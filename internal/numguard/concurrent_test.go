package numguard

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestLadderConcurrentSolves hammers one shared ladder from many
// goroutines (the decoupled-Galerkin usage pattern: one factor, N+1
// independent right-hand sides per step). Run under -race this checks
// the mutex-guarded rung state and pooled scratch; the assertions check
// that every solution is still verified-correct.
func TestLadderConcurrentSolves(t *testing.T) {
	rep := &Report{}
	lad := NewLadder("step", Config{VerifyEvery: 1}, spd2, spd2.normInf(),
		[]Rung{{Name: "exact", Prepare: func() (Solver, error) { return SolverFunc(spd2Solve), nil }}}, rep)

	const workers, solves = 8, 200
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			x := make([]float64, 2)
			b := []float64{float64(w + 1), float64(2*w + 1)}
			for k := 1; k <= solves; k++ {
				if err := lad.Solve(k, x, b); err != nil {
					errs[w] = err
					return
				}
				want := make([]float64, 2)
				spd2Solve(want, b)
				if math.Abs(x[0]-want[0]) > 1e-12 || math.Abs(x[1]-want[1]) > 1e-12 {
					errs[w] = fmt.Errorf("worker %d solve %d: got %v want %v", w, k, x, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if rep.Verified != workers*solves {
		t.Errorf("Verified = %d, want %d", rep.Verified, workers*solves)
	}
	if !rep.Healthy() {
		t.Errorf("report not healthy: %s", rep.Summary())
	}
}

// TestLadderConcurrentEscalationCoalesces makes every worker hit the
// same broken first rung at once: exactly one transition must be
// recorded (the losers coalesce into retries), and every worker must
// land on the good rung with a correct solution.
func TestLadderConcurrentEscalationCoalesces(t *testing.T) {
	rep := &Report{}
	bad := SolverFunc(func(x, b []float64) {
		for i := range x {
			x[i] = math.NaN()
		}
	})
	lad := NewLadder("step", Config{VerifyEvery: 1}, spd2, spd2.normInf(), []Rung{
		{Name: "poisoned", Prepare: func() (Solver, error) { return bad, nil }},
		{Name: "exact", Prepare: func() (Solver, error) { return SolverFunc(spd2Solve), nil }},
	}, rep)

	const workers = 8
	// Barrier so all workers race the same rung-0 failure window.
	var start sync.WaitGroup
	start.Add(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			x := make([]float64, 2)
			b := []float64{1, float64(w)}
			start.Done()
			start.Wait()
			if err := lad.Solve(1, x, b); err != nil {
				errs[w] = err
				return
			}
			want := make([]float64, 2)
			spd2Solve(want, b)
			if math.Abs(x[0]-want[0]) > 1e-12 || math.Abs(x[1]-want[1]) > 1e-12 {
				errs[w] = fmt.Errorf("worker %d: got %v want %v", w, x, want)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(rep.Transitions) != 1 {
		t.Errorf("transitions = %d, want exactly 1 (coalesced): %+v", len(rep.Transitions), rep.Transitions)
	}
	if rep.Transitions[0].From != "poisoned" || rep.Transitions[0].To != "exact" {
		t.Errorf("unexpected transition: %+v", rep.Transitions[0])
	}
	if got := lad.Rung(); got != "exact" {
		t.Errorf("final rung %q, want exact", got)
	}
	if rep.NaNEvents < 1 {
		t.Errorf("NaN events = %d, want >= 1", rep.NaNEvents)
	}
}

// TestReportSnapshotWhileMutating reads a snapshot concurrently with
// writers; -race validates the locking.
func TestReportSnapshotWhileMutating(t *testing.T) {
	rep := &Report{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			rep.Accept(1e-12)
			rep.AddRefinement()
			rep.MarkRefinedSolve()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap := rep.Snapshot()
			if snap.Refinements < 0 || snap.Verified < 0 {
				t.Error("impossible snapshot")
				return
			}
			_ = rep.Summary()
			_ = rep.Healthy()
		}
	}()
	wg.Wait()
	if rep.Verified != 1000 || rep.Refinements != 1000 || rep.RefinedSolves != 1000 {
		t.Errorf("final counts %d/%d/%d, want 1000 each", rep.Verified, rep.Refinements, rep.RefinedSolves)
	}
}
