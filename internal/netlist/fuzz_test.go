package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParse asserts two properties of the netlist reader on arbitrary
// input: it never panics (malformed cards must surface as errors), and
// accepted input is format-stable — parse → Write → parse → Write
// reproduces the first rendering byte for byte, so the text format is a
// faithful round-trip of the in-memory netlist.
func FuzzParse(f *testing.F) {
	f.Add("* comment only\n.nodes 2\nR1 1 2 2.5 ondie=1 region=0\n.end\n")
	f.Add(".nodes 3\nRa 1 2 1\nRb 2 3 1\nCa 1 0 1e-12 gatefrac=0.4 region=1\n" +
		"I1 3 DC ( 0.005 ) leffsens=1 region=0 leakage=1\nPp 1 1.2 0.1 ondie=1\n.end\n")
	f.Add(".nodes 2\nI1 1 PULSE ( 0 0.02 2e-10 1e-10 4e-10 1e-10 2e-9 ) leffsens=1\n.end\n")
	f.Add(".nodes 2\nI1 1 PWL ( 0 0 1e-9 0.01 2e-9 0 )\n.end\n")
	f.Add(".nodes 2\nI1 1 PER ( 2e-9 PWL ( 0 0 1e-9 0.01 ) )\n.end\n")
	f.Add(".nodes 2\nI1 1 SCALE ( 2 DC ( 0.001 ) )\n.end\n")
	f.Add(".nodes 1\n.end\nextra")
	f.Add(".nodes -5\n.end\n")
	f.Add("R1 1\nI1 ( ) DC\nP1\n.end")
	f.Add(".nodes 2\nI1 1 DC ( )\n.end\n")
	// Limit-edge cases: element names at/over the fuzz limits below, a
	// node count over the bound, many elements, and a card that is pure
	// name.
	f.Add(".nodes 2\nR" + strings.Repeat("n", 16) + " 1 2 1\nPp 1 1.2 0.1\n.end\n")
	f.Add(".nodes 2\nR" + strings.Repeat("n", 17) + " 1 2 1\nPp 1 1.2 0.1\n.end\n")
	f.Add(".nodes 99999999\n.end\n")
	f.Add(".nodes 3\nRa 1 2 1\nRb 2 3 1\nRc 1 3 1\nRd 1 2 2\nPp 1 1.2 0.1\n.end\n")
	f.Add("R\n.end\n")

	f.Fuzz(func(t *testing.T, input string) {
		// The limited reader must never panic either, and must only
		// ever reject with ordinary errors (structured *LimitError for
		// limit violations).
		if _, err := ReadLimited(strings.NewReader(input), Limits{
			MaxBytes: 96, MaxElements: 3, MaxNodes: 100, MaxNameLen: 16,
		}); err != nil {
			var le *LimitError
			if errors.As(err, &le) && le.Limit <= 0 {
				t.Fatalf("LimitError with nonpositive limit: %+v", le)
			}
		}
		nl, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; only panics are bugs
		}
		var first bytes.Buffer
		if err := Write(&first, nl); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		nl2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, nl2); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("format not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}
