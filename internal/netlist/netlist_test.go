package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPWLInterpolation(t *testing.T) {
	p, err := NewPWL([]float64{0, 1, 3}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		-1:  0, // before first point: hold
		0:   0,
		0.5: 5,
		1:   10,
		2:   5,
		3:   0,
		9:   0, // after last point: hold
	}
	for tt, want := range cases {
		if got := p.At(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestPWLRejectsUnsorted(t *testing.T) {
	if _, err := NewPWL([]float64{1, 0}, []float64{0, 0}); err == nil {
		t.Error("expected error for unsorted times")
	}
	if _, err := NewPWL([]float64{1}, []float64{}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestPulseShape(t *testing.T) {
	p := &Pulse{Low: 1, High: 5, Delay: 10, Rise: 2, Width: 4, Fall: 2, Period: 20}
	cases := map[float64]float64{
		0:  1, // before delay
		10: 1, // start of rise
		11: 3, // mid rise
		12: 5, // top
		15: 5,
		16: 5, // end of width
		17: 3, // mid fall
		18: 1, // low again
		30: 1, // next period start of rise
		32: 5, // next period top
	}
	for tt, want := range cases {
		if got := p.At(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("Pulse.At(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestPeriodicWrapsNegativeAndPositive(t *testing.T) {
	inner, _ := NewPWL([]float64{0, 1}, []float64{0, 1})
	p := &Periodic{Inner: inner, Period: 1}
	if got := p.At(2.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("At(2.25) = %g", got)
	}
}

func TestScaled(t *testing.T) {
	s := &Scaled{Inner: DC(3), Gain: -2}
	if s.At(0) != -6 {
		t.Errorf("scaled DC = %g", s.At(0))
	}
}

func TestValidate(t *testing.T) {
	good := &Netlist{
		NumNodes:  2,
		Resistors: []Resistor{{Name: "1", A: 0, B: 1, Ohms: 1, OnDie: true}},
		Caps:      []Capacitor{{Name: "1", A: 1, B: Ground, Farads: 1e-15, GateFrac: 0.4}},
		Sources:   []CurrentSource{{Name: "1", A: 1, Wave: DC(1e-3), Region: -1}},
		Pads:      []Pad{{Name: "1", Node: 0, VDD: 1.2, Rpin: 0.1, OnDie: true}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	bad := *good
	bad.Resistors = []Resistor{{Name: "x", A: 0, B: 5, Ohms: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range node accepted")
	}
	bad = *good
	bad.Resistors = []Resistor{{Name: "x", A: 0, B: 1, Ohms: -2}}
	if err := bad.Validate(); err == nil {
		t.Error("negative resistance accepted")
	}
	bad = *good
	bad.Pads = nil
	if err := bad.Validate(); err == nil {
		t.Error("padless grid accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	pwl, _ := NewPWL([]float64{0, 1e-9, 2e-9}, []float64{0, 5e-3, 0})
	nl := &Netlist{
		NumNodes: 4,
		Resistors: []Resistor{
			{Name: "a", A: 0, B: 1, Ohms: 2.5, OnDie: true},
			{Name: "b", A: 1, B: Ground, Ohms: 100},
		},
		Caps: []Capacitor{
			{Name: "c1", A: 2, B: Ground, Farads: 3e-15, GateFrac: 0.4},
		},
		Sources: []CurrentSource{
			{Name: "s1", A: 2, Wave: pwl, LeffSens: 1, Region: 2},
			{Name: "s2", A: 3, Wave: &Periodic{Inner: pwl, Period: 2e-9}, LeffSens: 0.5, Region: -1},
			{Name: "s3", A: 1, Wave: &Pulse{Low: 0, High: 1e-3, Delay: 1e-10, Rise: 1e-10, Width: 3e-10, Fall: 1e-10, Period: 2e-9}, Region: -1},
			{Name: "s4", A: 0, Wave: &Scaled{Inner: DC(2e-4), Gain: 3}, Region: -1},
		},
		Pads: []Pad{
			{Name: "p1", Node: 0, VDD: 1.2, Rpin: 0.05, OnDie: true},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("parse failed: %v\ntext:\n%s", err, buf.String())
	}
	if got.NumNodes != 4 {
		t.Errorf("NumNodes = %d", got.NumNodes)
	}
	if len(got.Resistors) != 2 || len(got.Caps) != 1 || len(got.Sources) != 4 || len(got.Pads) != 1 {
		t.Fatalf("element counts wrong: %s", got.Stats())
	}
	if got.Resistors[0].B != 1 || !got.Resistors[0].OnDie {
		t.Errorf("resistor a wrong: %+v", got.Resistors[0])
	}
	if got.Resistors[1].B != Ground {
		t.Errorf("ground not restored: %+v", got.Resistors[1])
	}
	if got.Caps[0].GateFrac != 0.4 {
		t.Errorf("gatefrac = %g", got.Caps[0].GateFrac)
	}
	if got.Sources[0].Region != 2 || got.Sources[0].LeffSens != 1 {
		t.Errorf("source attrs wrong: %+v", got.Sources[0])
	}
	// Waveforms evaluate identically.
	for i, s := range nl.Sources {
		for _, tt := range []float64{0, 3e-10, 1e-9, 2.5e-9, 7e-9} {
			if a, b := s.Wave.At(tt), got.Sources[i].Wave.At(tt); math.Abs(a-b) > 1e-15 {
				t.Errorf("source %d waveform differs at %g: %g vs %g", i, tt, a, b)
			}
		}
	}
	if got.Pads[0].VDD != 1.2 || got.Pads[0].Rpin != 0.05 || !got.Pads[0].OnDie {
		t.Errorf("pad wrong: %+v", got.Pads[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		".nodes 2\nR1 1 2 1\n",                       // missing .end
		".nodes 2\nR1 1 9 1 ondie=0\n.end\n",         // bad node
		".nodes 2\nXfoo 1 2\n.end\n",                 // unknown card
		".nodes 2\nI1 1 PWL(0 0 1\n.end\n",           // unclosed PWL
		".nodes 1\nP1 1 1.2 0.1 ondie=1\n.end\nR1\n", // content after .end
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestReadIgnoresCommentsAndBlank(t *testing.T) {
	src := `* header comment

.nodes 2
* elements
R1 1 2 1 ondie=1
P1 1 1.0 0.1 ondie=0
.end
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Resistors) != 1 || len(nl.Pads) != 1 {
		t.Errorf("parsed %s", nl.Stats())
	}
}

func TestStats(t *testing.T) {
	nl := &Netlist{NumNodes: 3, Pads: []Pad{{Name: "p", Node: 0, VDD: 1, Rpin: 1}}}
	s := nl.Stats()
	if !strings.Contains(s, "3 nodes") || !strings.Contains(s, "1 pads") {
		t.Errorf("Stats = %q", s)
	}
}

func TestWaveformFormats(t *testing.T) {
	pwl, _ := NewPWL([]float64{0, 1}, []float64{0, 2})
	cases := []struct {
		w    Waveform
		want string
	}{
		{DC(3), "DC(3)"},
		{pwl, "PWL(0 0 1 2)"},
		{&Pulse{Low: 0, High: 1, Delay: 2, Rise: 3, Width: 4, Fall: 5, Period: 6}, "PULSE(0 1 2 3 4 5 6)"},
		{&Periodic{Inner: DC(1), Period: 7}, "PER(7 DC(1))"},
		{&Scaled{Inner: DC(2), Gain: -1}, "SCALE(-1 DC(2))"},
	}
	for _, tc := range cases {
		if got := tc.w.Format(); got != tc.want {
			t.Errorf("Format = %q, want %q", got, tc.want)
		}
	}
}

func TestParseErrorsDetailed(t *testing.T) {
	cases := []string{
		".nodes x\n.end\n",                          // bad node count
		".nodes 2\nR1 1 2\n.end\n",                  // resistor missing value
		".nodes 2\nR1 a 2 1\n.end\n",                // bad node token
		".nodes 2\nR1 1 2 abc\n.end\n",              // bad resistance
		".nodes 2\nR1 1 2 1 bogus\n.end\n",          // non-kv tail
		".nodes 2\nR1 1 2 1 region=z\n.end\n",       // bad region
		".nodes 2\nC1 1 0 x\n.end\n",                // bad capacitance
		".nodes 2\nC1 1 0 1e-15 gatefrac=z\n.end\n", // bad gatefrac
		".nodes 2\nC1 1 0 1e-15 region=z\n.end\n",   // bad cap region
		".nodes 2\nI1 1 DC(x)\n.end\n",              // bad DC value
		".nodes 2\nI1 1 DC(1\n.end\n",               // unclosed DC
		".nodes 2\nI1 1 FOO(1)\n.end\n",             // unknown waveform
		".nodes 2\nI1 1 DC(1) leffsens=z\n.end\n",   // bad leffsens
		".nodes 2\nI1 1 DC(1) region=z\n.end\n",     // bad source region
		".nodes 2\nI1 1 PULSE(1 2 3)\n.end\n",       // short PULSE
		".nodes 2\nI1 1 PER(x DC(1))\n.end\n",       // bad period
		".nodes 2\nI1 1 PER(1 DC(1)\n.end\n",        // unclosed PER
		".nodes 2\nI1 1 SCALE(x DC(1))\n.end\n",     // bad gain
		".nodes 2\nI1 1 SCALE(1 DC(1)\n.end\n",      // unclosed SCALE
		".nodes 2\nI1 1 PWL(0 0 1)\n.end\n",         // odd PWL values
		".nodes 2\nP1 1 1.2\n.end\n",                // short pad
		".nodes 2\nP1 1 x 0.1\n.end\n",              // bad vdd
		".nodes 2\nP1 1 1.2 x\n.end\n",              // bad rpin
		".nodes 2\nP1 z 1.2 0.1\n.end\n",            // bad pad node
		".nodes 2\n.nodes\n.end\n",                  // .nodes arity
		".nodes 2\nI1 1 PWL(0 z)\n.end\n",           // bad PWL number
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestValidateMoreCases(t *testing.T) {
	base := func() *Netlist {
		return &Netlist{
			NumNodes: 2,
			Pads:     []Pad{{Name: "p", Node: 0, VDD: 1, Rpin: 1}},
		}
	}
	nl := base()
	nl.Caps = []Capacitor{{Name: "c", A: 0, B: Ground, Farads: -1}}
	if nl.Validate() == nil {
		t.Error("negative capacitance accepted")
	}
	nl = base()
	nl.Caps = []Capacitor{{Name: "c", A: 0, B: Ground, Farads: 1, GateFrac: 2}}
	if nl.Validate() == nil {
		t.Error("gatefrac > 1 accepted")
	}
	nl = base()
	nl.Sources = []CurrentSource{{Name: "s", A: 0}}
	if nl.Validate() == nil {
		t.Error("source without waveform accepted")
	}
	nl = base()
	nl.Sources = []CurrentSource{{Name: "s", A: Ground, Wave: DC(1)}}
	if nl.Validate() == nil {
		t.Error("grounded source accepted")
	}
	nl = base()
	nl.Pads[0].Rpin = 0
	if nl.Validate() == nil {
		t.Error("zero pin resistance accepted")
	}
	nl = base()
	nl.Pads[0].Node = 9
	if nl.Validate() == nil {
		t.Error("out-of-range pad accepted")
	}
}

func TestPulseZeroRiseFall(t *testing.T) {
	p := &Pulse{Low: 0, High: 1, Delay: 1, Rise: 0, Width: 2, Fall: 0, Period: 0}
	if p.At(1.0) != 1 {
		t.Errorf("instant rise At(1) = %g", p.At(1.0))
	}
	if p.At(3.5) != 0 {
		t.Errorf("after instant fall At(3.5) = %g", p.At(3.5))
	}
	// Non-repeating: stays low after the single pulse.
	if p.At(100) != 0 {
		t.Errorf("single pulse repeated")
	}
}

func TestPeriodicZeroPeriodPassthrough(t *testing.T) {
	p := &Periodic{Inner: DC(5), Period: 0}
	if p.At(3) != 5 {
		t.Error("zero-period periodic should pass through")
	}
}
