package netlist

import (
	"errors"
	"strings"
	"testing"
)

const tinyGrid = ".nodes 2\nRa 1 2 1\nCa 1 0 1e-12\nI1 2 DC ( 0.001 )\nPp 1 1.2 0.1\n.end\n"

func TestReadLimitedZeroValueAcceptsEverything(t *testing.T) {
	nl, err := ReadLimited(strings.NewReader(tinyGrid), Limits{})
	if err != nil {
		t.Fatalf("zero limits must accept valid input: %v", err)
	}
	if nl.NumNodes != 2 {
		t.Fatalf("parsed %d nodes, want 2", nl.NumNodes)
	}
}

func TestReadLimitedMaxBytes(t *testing.T) {
	_, err := ReadLimited(strings.NewReader(tinyGrid), Limits{MaxBytes: 10})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.What != "bytes" || le.Limit != 10 {
		t.Errorf("wrong violation: %+v", le)
	}
	// Exactly at the limit is fine.
	if _, err := ReadLimited(strings.NewReader(tinyGrid), Limits{MaxBytes: int64(len(tinyGrid))}); err != nil {
		t.Fatalf("input exactly at MaxBytes must parse: %v", err)
	}
}

func TestReadLimitedMaxElements(t *testing.T) {
	_, err := ReadLimited(strings.NewReader(tinyGrid), Limits{MaxElements: 3})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "elements" {
		t.Fatalf("want elements *LimitError, got %v", err)
	}
	if le.Got != 4 || le.Limit != 3 {
		t.Errorf("violation observed at %d/%d, want 4/3", le.Got, le.Limit)
	}
	if _, err := ReadLimited(strings.NewReader(tinyGrid), Limits{MaxElements: 4}); err != nil {
		t.Fatalf("element count at the limit must parse: %v", err)
	}
}

func TestReadLimitedMaxNodes(t *testing.T) {
	_, err := ReadLimited(strings.NewReader(".nodes 1000000\n.end\n"), Limits{MaxNodes: 10})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "nodes" {
		t.Fatalf("want nodes *LimitError, got %v", err)
	}
}

func TestReadLimitedMaxNameLen(t *testing.T) {
	long := ".nodes 2\nR" + strings.Repeat("x", 50) + " 1 2 1\nPp 1 1.2 0.1\n.end\n"
	_, err := ReadLimited(strings.NewReader(long), Limits{MaxNameLen: 8})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "name-length" {
		t.Fatalf("want name-length *LimitError, got %v", err)
	}
	if le.Got != 50 {
		t.Errorf("got name length %d, want 50", le.Got)
	}
}

func TestDefaultLimitsAcceptGeneratedGrids(t *testing.T) {
	if _, err := ReadLimited(strings.NewReader(tinyGrid), DefaultLimits()); err != nil {
		t.Fatalf("default limits must accept a normal grid: %v", err)
	}
}

func TestLimitErrorText(t *testing.T) {
	e := &LimitError{What: "bytes", Limit: 10, Got: 11}
	if !strings.Contains(e.Error(), "bytes") || !strings.Contains(e.Error(), "11 > 10") {
		t.Fatalf("unhelpful error text: %s", e.Error())
	}
}
