// Package netlist defines the circuit-level model of a power grid: an
// RC network of metal resistors, decoupling/load capacitors, transient
// drain-current sources for the functional blocks, and supply pads
// (ideal VDD behind a package pin resistance, per the paper's §3). It
// also provides a SPICE-like text format so grids can be generated,
// stored and re-analyzed by the command-line tools.
//
// Node convention: nodes are integers 0..NumNodes-1; Ground (-1)
// denotes the reference node (written as node "0" in the text format,
// with circuit nodes shifted to 1-based ids).
package netlist

import "fmt"

// Ground is the reference node id.
const Ground = -1

// Resistor is a two-terminal resistance. OnDie marks metal whose
// conductance varies with the interconnect geometry variables (W, T —
// the paper's ξG); package/pin resistances are off-die and fixed.
type Resistor struct {
	Name  string
	A, B  int
	Ohms  float64
	OnDie bool
	// Region is the intra-die region for spatial (within-die) variation
	// models; -1 means unassigned (inter-die-only analyses ignore it).
	Region int
}

// Capacitor is a two-terminal capacitance. GateFrac is the fraction of
// the capacitance contributed by MOS gate capacitance, which varies
// with Leff (the paper assumes 40% grid-wide); the remaining fraction is
// interconnect/diffusion capacitance treated as fixed.
type Capacitor struct {
	Name     string
	A, B     int
	Farads   float64
	GateFrac float64
	// Region is the intra-die region of the load; -1 means unassigned.
	Region int
}

// CurrentSource models a functional block's drain current: a transient
// waveform drawn from node A to ground. LeffSens is the relative
// first-order sensitivity of the current to the normalized Leff
// variable (paper: drain and leakage currents "vary significantly with
// Leff"). Region identifies the intra-die region for the §5.1 special
// case; -1 means no region assignment. Leakage marks the source as a
// subthreshold/gate leakage component, which the §5.1 analysis treats
// as lognormally distributed under threshold-voltage variation.
type CurrentSource struct {
	Name     string
	A        int
	Wave     Waveform
	LeffSens float64
	Region   int
	Leakage  bool
}

// Pad is a supply connection: an ideal VDD source in series with the
// package pin resistance Rpin, attached to a grid node. It is
// Norton-transformed during MNA stamping. OnDie marks the pad's
// effective resistance as belonging to on-die metal (and therefore
// varying with ξG, which produces the paper's Ug·ξG excitation term).
type Pad struct {
	Name  string
	Node  int
	VDD   float64
	Rpin  float64
	OnDie bool
}

// Netlist is a complete power grid description.
type Netlist struct {
	NumNodes  int
	Resistors []Resistor
	Caps      []Capacitor
	Sources   []CurrentSource
	Pads      []Pad
}

// Validate checks node ranges and element values.
func (n *Netlist) Validate() error {
	checkNode := func(kind, name string, node int, allowGround bool) error {
		if node == Ground && allowGround {
			return nil
		}
		if node < 0 || node >= n.NumNodes {
			return fmt.Errorf("netlist: %s %q references node %d (grid has %d nodes)", kind, name, node, n.NumNodes)
		}
		return nil
	}
	for _, r := range n.Resistors {
		if err := checkNode("resistor", r.Name, r.A, true); err != nil {
			return err
		}
		if err := checkNode("resistor", r.Name, r.B, true); err != nil {
			return err
		}
		if r.A == r.B {
			return fmt.Errorf("netlist: resistor %q is shorted to itself", r.Name)
		}
		if r.Ohms <= 0 {
			return fmt.Errorf("netlist: resistor %q has nonpositive value %g", r.Name, r.Ohms)
		}
	}
	for _, c := range n.Caps {
		if err := checkNode("capacitor", c.Name, c.A, true); err != nil {
			return err
		}
		if err := checkNode("capacitor", c.Name, c.B, true); err != nil {
			return err
		}
		if c.Farads < 0 {
			return fmt.Errorf("netlist: capacitor %q has negative value %g", c.Name, c.Farads)
		}
		if c.GateFrac < 0 || c.GateFrac > 1 {
			return fmt.Errorf("netlist: capacitor %q gate fraction %g outside [0,1]", c.Name, c.GateFrac)
		}
	}
	for _, s := range n.Sources {
		if err := checkNode("source", s.Name, s.A, false); err != nil {
			return err
		}
		if s.Wave == nil {
			return fmt.Errorf("netlist: source %q has no waveform", s.Name)
		}
	}
	for _, p := range n.Pads {
		if err := checkNode("pad", p.Name, p.Node, false); err != nil {
			return err
		}
		if p.Rpin <= 0 {
			return fmt.Errorf("netlist: pad %q has nonpositive pin resistance %g", p.Name, p.Rpin)
		}
	}
	if len(n.Pads) == 0 {
		return fmt.Errorf("netlist: grid has no supply pads; the conductance matrix would be singular")
	}
	return nil
}

// Stats summarizes element counts for reports.
func (n *Netlist) Stats() string {
	return fmt.Sprintf("%d nodes, %d resistors, %d capacitors, %d current sources, %d pads",
		n.NumNodes, len(n.Resistors), len(n.Caps), len(n.Sources), len(n.Pads))
}
