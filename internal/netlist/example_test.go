package netlist_test

import (
	"bytes"
	"fmt"

	"opera/internal/netlist"
)

// ExamplePWL interpolates a triangular current pulse.
func ExamplePWL() {
	wave, err := netlist.NewPWL(
		[]float64{0, 1e-9, 2e-9},
		[]float64{0, 1e-3, 0},
	)
	if err != nil {
		panic(err)
	}
	for _, t := range []float64{0, 0.5e-9, 1e-9, 1.5e-9, 3e-9} {
		fmt.Printf("i(%.1f ns) = %.2f mA\n", t*1e9, wave.At(t)*1e3)
	}
	// Output:
	// i(0.0 ns) = 0.00 mA
	// i(0.5 ns) = 0.50 mA
	// i(1.0 ns) = 1.00 mA
	// i(1.5 ns) = 0.50 mA
	// i(3.0 ns) = 0.00 mA
}

// ExampleWrite shows the text netlist format round-tripping.
func ExampleWrite() {
	nl := &netlist.Netlist{
		NumNodes: 2,
		Resistors: []netlist.Resistor{
			{Name: "m1", A: 0, B: 1, Ohms: 2.5, OnDie: true, Region: 0},
		},
		Caps: []netlist.Capacitor{
			{Name: "c1", A: 1, B: netlist.Ground, Farads: 1e-13, GateFrac: 0.4, Region: 0},
		},
		Sources: []netlist.CurrentSource{
			{Name: "s1", A: 1, Wave: netlist.DC(0.001), LeffSens: 1, Region: 0},
		},
		Pads: []netlist.Pad{
			{Name: "p1", Node: 0, VDD: 1.2, Rpin: 0.05, OnDie: true},
		},
	}
	var buf bytes.Buffer
	if err := netlist.Write(&buf, nl); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	// Output:
	// * OPERA power grid netlist
	// .nodes 2
	// Rm1 1 2 2.5 ondie=1 region=0
	// Cc1 2 0 1e-13 gatefrac=0.4 region=0
	// Is1 2 DC(0.001) leffsens=1 region=0 leakage=0
	// Pp1 1 1.2 0.05 ondie=1
	// .end
}
