package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Waveform is a transient scalar signal.
type Waveform interface {
	// At evaluates the waveform at time t (seconds).
	At(t float64) float64
	// Format renders the waveform in the netlist text syntax.
	Format() string
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Format implements Waveform.
func (d DC) Format() string { return fmt.Sprintf("DC(%g)", float64(d)) }

// PWL is a piecewise-linear waveform through (T[i], V[i]) breakpoints;
// it holds the end values outside the breakpoint range. Breakpoints
// must be sorted by time.
type PWL struct {
	T, V []float64
}

// NewPWL validates and constructs a PWL waveform.
func NewPWL(t, v []float64) (*PWL, error) {
	if len(t) != len(v) || len(t) == 0 {
		return nil, fmt.Errorf("netlist: PWL needs equal nonzero breakpoint counts, got %d/%d", len(t), len(v))
	}
	if !sort.Float64sAreSorted(t) {
		return nil, fmt.Errorf("netlist: PWL times must be ascending")
	}
	return &PWL{T: append([]float64(nil), t...), V: append([]float64(nil), v...)}, nil
}

// At implements Waveform by linear interpolation.
func (p *PWL) At(t float64) float64 {
	n := len(p.T)
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	// p.T[i-1] < t <= p.T[i]
	t0, t1 := p.T[i-1], p.T[i]
	v0, v1 := p.V[i-1], p.V[i]
	if t1 == t0 {
		return v1
	}
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Format implements Waveform.
func (p *PWL) Format() string {
	var sb strings.Builder
	sb.WriteString("PWL(")
	for i := range p.T {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%g %g", p.T[i], p.V[i])
	}
	sb.WriteByte(')')
	return sb.String()
}

// Periodic repeats an inner waveform with the given period, evaluating
// the inner waveform at t mod Period.
type Periodic struct {
	Inner  Waveform
	Period float64
}

// At implements Waveform.
func (p *Periodic) At(t float64) float64 {
	if p.Period <= 0 {
		return p.Inner.At(t)
	}
	m := t - float64(int(t/p.Period))*p.Period
	if m < 0 {
		m += p.Period
	}
	return p.Inner.At(m)
}

// Format implements Waveform.
func (p *Periodic) Format() string {
	return fmt.Sprintf("PER(%g %s)", p.Period, p.Inner.Format())
}

// Pulse is a trapezoidal pulse train: baseline Low, rising to High at
// Delay over Rise, holding for Width, falling over Fall, repeating
// every Period (0 = single pulse).
type Pulse struct {
	Low, High                float64
	Delay, Rise, Width, Fall float64
	Period                   float64
}

// At implements Waveform.
func (p *Pulse) At(t float64) float64 {
	tt := t - p.Delay
	if p.Period > 0 && tt >= 0 {
		tt -= float64(int(tt/p.Period)) * p.Period
	}
	switch {
	case tt < 0:
		return p.Low
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.High
		}
		return p.Low + (p.High-p.Low)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.High
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.Low
		}
		return p.High - (p.High-p.Low)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.Low
	}
}

// Format implements Waveform.
func (p *Pulse) Format() string {
	return fmt.Sprintf("PULSE(%g %g %g %g %g %g %g)",
		p.Low, p.High, p.Delay, p.Rise, p.Width, p.Fall, p.Period)
}

// Scaled multiplies an inner waveform by a constant gain.
type Scaled struct {
	Inner Waveform
	Gain  float64
}

// At implements Waveform.
func (s *Scaled) At(t float64) float64 { return s.Gain * s.Inner.At(t) }

// Format implements Waveform.
func (s *Scaled) Format() string {
	return fmt.Sprintf("SCALE(%g %s)", s.Gain, s.Inner.Format())
}
