package netlist

import (
	"fmt"
	"io"
)

// Limits bounds how much input the netlist reader will accept before
// any stamping happens. A zero field disables that bound; the zero
// value therefore accepts everything, which is what the trusted
// command-line tools use. Servers that accept uploads should pass
// DefaultLimits (or something stricter) so oversized or hostile input
// is rejected with a structured *LimitError while still cheap to
// reject — the reader never buffers more than one line past a limit.
type Limits struct {
	// MaxBytes caps the total input size in bytes.
	MaxBytes int64
	// MaxElements caps the total element count (resistors + capacitors
	// + sources + pads).
	MaxElements int
	// MaxNodes caps the .nodes declaration.
	MaxNodes int
	// MaxNameLen caps the length of an element name (the card token
	// minus its type letter).
	MaxNameLen int
}

// DefaultLimits is a generous bound for untrusted uploads: large
// enough for multi-million-node industrial grids, small enough that a
// hostile request cannot exhaust server memory during parsing.
func DefaultLimits() Limits {
	return Limits{
		MaxBytes:    256 << 20, // 256 MiB of netlist text
		MaxElements: 20_000_000,
		MaxNodes:    20_000_000,
		MaxNameLen:  256,
	}
}

// LimitError reports input that exceeds a reader limit. It is
// structured so servers can map it to a 4xx response (the input is the
// problem, not the service).
type LimitError struct {
	// What names the exceeded bound: "bytes", "elements", "nodes" or
	// "name-length".
	What string
	// Limit is the configured bound; Got is the observed value (for
	// "bytes" it is the limit+1 watermark at which reading stopped).
	Limit, Got int64
}

// Error formats the violation.
func (e *LimitError) Error() string {
	return fmt.Sprintf("netlist: input exceeds %s limit: %d > %d", e.What, e.Got, e.Limit)
}

// limitedReader counts bytes and fails once the limit+1-th byte
// arrives (input exactly at the limit reads cleanly to EOF), so a huge
// upload is rejected without buffering the oversized remainder.
type limitedReader struct {
	r     io.Reader
	n     int64 // remaining budget, initialized to limit+1
	limit int64
	hit   bool // over-limit byte observed
}

func newLimitedReader(r io.Reader, limit int64) *limitedReader {
	return &limitedReader{r: r, n: limit + 1, limit: limit}
}

func (l *limitedReader) err() *LimitError {
	l.hit = true
	return &LimitError{What: "bytes", Limit: l.limit, Got: l.limit + 1}
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, l.err()
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	if l.n <= 0 {
		return 0, l.err()
	}
	return n, err
}

// checkCard enforces the per-card limits (element count, name length,
// node bound) after one card has been parsed into n.
func (lim Limits) checkCard(n *Netlist) error {
	if lim.MaxElements > 0 {
		if el := len(n.Resistors) + len(n.Caps) + len(n.Sources) + len(n.Pads); el > lim.MaxElements {
			return &LimitError{What: "elements", Limit: int64(lim.MaxElements), Got: int64(el)}
		}
	}
	if lim.MaxNodes > 0 && n.NumNodes > lim.MaxNodes {
		return &LimitError{What: "nodes", Limit: int64(lim.MaxNodes), Got: int64(n.NumNodes)}
	}
	return nil
}

// checkName enforces MaxNameLen on one element name.
func (lim Limits) checkName(name string) error {
	if lim.MaxNameLen > 0 && len(name) > lim.MaxNameLen {
		return &LimitError{What: "name-length", Limit: int64(lim.MaxNameLen), Got: int64(len(name))}
	}
	return nil
}
