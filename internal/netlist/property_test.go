package netlist

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNetlist builds a structurally valid random netlist.
func randomNetlist(rng *rand.Rand) *Netlist {
	n := 2 + rng.Intn(20)
	nl := &Netlist{NumNodes: n}
	nres := 1 + rng.Intn(3*n)
	for i := 0; i < nres; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n + 1) // n means ground
		if b == n {
			b = Ground
		}
		if a == b {
			b = (a+1)%n + 0
		}
		nl.Resistors = append(nl.Resistors, Resistor{
			Name: fmt.Sprintf("r%d", i), A: a, B: b,
			Ohms:  math.Exp(rng.NormFloat64()),
			OnDie: rng.Intn(2) == 0,
		})
	}
	ncap := rng.Intn(2 * n)
	for i := 0; i < ncap; i++ {
		nl.Caps = append(nl.Caps, Capacitor{
			Name: fmt.Sprintf("c%d", i), A: rng.Intn(n), B: Ground,
			Farads:   math.Exp(rng.NormFloat64()) * 1e-13,
			GateFrac: rng.Float64(),
		})
	}
	nsrc := rng.Intn(n)
	for i := 0; i < nsrc; i++ {
		var wave Waveform
		switch rng.Intn(4) {
		case 0:
			wave = DC(rng.Float64() * 1e-3)
		case 1:
			k := 2 + rng.Intn(4)
			ts := make([]float64, k)
			vs := make([]float64, k)
			for j := range ts {
				ts[j] = float64(j) * 1e-10
				vs[j] = rng.Float64() * 1e-3
			}
			wave, _ = NewPWL(ts, vs)
		case 2:
			wave = &Pulse{
				Low: 0, High: rng.Float64() * 1e-3,
				Delay: rng.Float64() * 1e-10, Rise: 1e-11,
				Width: rng.Float64() * 1e-10, Fall: 1e-11, Period: 2e-9,
			}
		default:
			wave = &Scaled{Inner: DC(1e-3), Gain: rng.Float64()}
		}
		nl.Sources = append(nl.Sources, CurrentSource{
			Name: fmt.Sprintf("s%d", i), A: rng.Intn(n), Wave: wave,
			LeffSens: rng.Float64(), Region: rng.Intn(4) - 1,
			Leakage: rng.Intn(3) == 0,
		})
	}
	npad := 1 + rng.Intn(3)
	for i := 0; i < npad; i++ {
		nl.Pads = append(nl.Pads, Pad{
			Name: fmt.Sprintf("p%d", i), Node: rng.Intn(n),
			VDD: 0.9 + rng.Float64(), Rpin: 0.01 + rng.Float64(),
			OnDie: rng.Intn(2) == 0,
		})
	}
	return nl
}

// TestRoundTripProperty: Write∘Read is the identity on structure and on
// waveform samples for arbitrary valid netlists.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomNetlist(rng)
		if err := nl.Validate(); err != nil {
			t.Logf("generator produced invalid netlist: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("read: %v\n%s", err, buf.String())
			return false
		}
		if got.NumNodes != nl.NumNodes ||
			len(got.Resistors) != len(nl.Resistors) ||
			len(got.Caps) != len(nl.Caps) ||
			len(got.Sources) != len(nl.Sources) ||
			len(got.Pads) != len(nl.Pads) {
			return false
		}
		for i, r := range nl.Resistors {
			g := got.Resistors[i]
			if g.A != r.A || g.B != r.B || g.OnDie != r.OnDie ||
				math.Abs(g.Ohms-r.Ohms) > 1e-12*r.Ohms {
				return false
			}
		}
		for i, c := range nl.Caps {
			g := got.Caps[i]
			if g.A != c.A || math.Abs(g.Farads-c.Farads) > 1e-12*c.Farads ||
				math.Abs(g.GateFrac-c.GateFrac) > 1e-12 {
				return false
			}
		}
		for i, s := range nl.Sources {
			g := got.Sources[i]
			if g.A != s.A || g.Region != s.Region || g.Leakage != s.Leakage {
				return false
			}
			for _, tt := range []float64{0, 7e-11, 3e-10, 1.7e-9} {
				a, b := s.Wave.At(tt), g.Wave.At(tt)
				if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
					return false
				}
			}
		}
		for i, p := range nl.Pads {
			g := got.Pads[i]
			if g.Node != p.Node || g.OnDie != p.OnDie ||
				math.Abs(g.VDD-p.VDD) > 1e-12 || math.Abs(g.Rpin-p.Rpin) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDoubleRoundTripIdempotent: a second Write produces byte-identical
// output (the format is canonical).
func TestDoubleRoundTripIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		nl := randomNetlist(rng)
		var b1 bytes.Buffer
		if err := Write(&b1, nl); err != nil {
			t.Fatal(err)
		}
		again, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := Write(&b2, again); err != nil {
			t.Fatal(err)
		}
		reread, err := Read(bytes.NewReader(b2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b3 bytes.Buffer
		if err := Write(&b3, reread); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
			t.Fatalf("format not canonical after first round trip")
		}
	}
}
