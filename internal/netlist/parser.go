package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write renders the netlist in the text format parsed by Read.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* OPERA power grid netlist\n.nodes %d\n", n.NumNodes)
	ext := func(node int) int { return node + 1 } // ground -1 -> 0
	for _, r := range n.Resistors {
		onDie := 0
		if r.OnDie {
			onDie = 1
		}
		fmt.Fprintf(bw, "R%s %d %d %g ondie=%d region=%d\n", r.Name, ext(r.A), ext(r.B), r.Ohms, onDie, r.Region)
	}
	for _, c := range n.Caps {
		fmt.Fprintf(bw, "C%s %d %d %g gatefrac=%g region=%d\n", c.Name, ext(c.A), ext(c.B), c.Farads, c.GateFrac, c.Region)
	}
	for _, s := range n.Sources {
		leak := 0
		if s.Leakage {
			leak = 1
		}
		fmt.Fprintf(bw, "I%s %d %s leffsens=%g region=%d leakage=%d\n",
			s.Name, ext(s.A), s.Wave.Format(), s.LeffSens, s.Region, leak)
	}
	for _, p := range n.Pads {
		onDie := 0
		if p.OnDie {
			onDie = 1
		}
		fmt.Fprintf(bw, "P%s %d %g %g ondie=%d\n", p.Name, ext(p.Node), p.VDD, p.Rpin, onDie)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// Read parses the text format produced by Write with no input limits
// (the trusted command-line path). Servers accepting uploads should
// use ReadLimited.
func Read(r io.Reader) (*Netlist, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited parses the text format produced by Write, enforcing the
// given input limits while reading: a violated bound stops parsing
// immediately with a structured *LimitError, before any matrix is
// stamped and without buffering the oversized remainder.
func ReadLimited(r io.Reader, lim Limits) (*Netlist, error) {
	var lr *limitedReader
	if lim.MaxBytes > 0 {
		lr = newLimitedReader(r, lim.MaxBytes)
		r = lr
	}
	// A byte-limit hit truncates the input mid-line, so whatever card
	// error the tail produces is an artifact; report the limit instead.
	bytesHit := func() error {
		if lr != nil && lr.hit {
			return &LimitError{What: "bytes", Limit: lr.limit, Got: lr.limit + 1}
		}
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := &Netlist{}
	line := 0
	seenEnd := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "*") {
			continue
		}
		if seenEnd {
			return nil, fmt.Errorf("netlist: line %d: content after .end", line)
		}
		toks := tokenize(text)
		if len(toks) == 0 {
			continue
		}
		if isElementCard(toks[0]) {
			if err := lim.checkName(toks[0][1:]); err != nil {
				return nil, err
			}
		}
		var err error
		switch {
		case toks[0] == ".nodes":
			if len(toks) != 2 {
				err = fmt.Errorf(".nodes takes one argument")
				break
			}
			n.NumNodes, err = strconv.Atoi(toks[1])
		case toks[0] == ".end":
			seenEnd = true
		case strings.HasPrefix(toks[0], "R"):
			err = parseResistor(n, toks)
		case strings.HasPrefix(toks[0], "C"):
			err = parseCapacitor(n, toks)
		case strings.HasPrefix(toks[0], "I"):
			err = parseSource(n, toks)
		case strings.HasPrefix(toks[0], "P"):
			err = parsePad(n, toks)
		default:
			err = fmt.Errorf("unknown card %q", toks[0])
		}
		if err != nil {
			if lerr := bytesHit(); lerr != nil {
				return nil, lerr
			}
			return nil, fmt.Errorf("netlist: line %d: %w", line, err)
		}
		if err := lim.checkCard(n); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		var le *LimitError
		if errors.As(err, &le) {
			return nil, le
		}
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if !seenEnd {
		if lerr := bytesHit(); lerr != nil {
			return nil, lerr
		}
		return nil, fmt.Errorf("netlist: missing .end")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// isElementCard reports whether a leading token introduces a named
// element (as opposed to a directive).
func isElementCard(tok string) bool {
	return strings.HasPrefix(tok, "R") || strings.HasPrefix(tok, "C") ||
		strings.HasPrefix(tok, "I") || strings.HasPrefix(tok, "P")
}

// tokenize splits a card into words, separating parentheses so that
// waveform expressions parse recursively.
func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

func parseNode(tok string) (int, error) {
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("bad node %q", tok)
	}
	return v - 1, nil // external 0 = ground -> internal -1
}

// parseKV extracts key=value options from the tail of a card.
func parseKV(toks []string) (map[string]string, error) {
	kv := map[string]string{}
	for _, t := range toks {
		eq := strings.IndexByte(t, '=')
		if eq < 0 {
			return nil, fmt.Errorf("expected key=value, got %q", t)
		}
		kv[t[:eq]] = t[eq+1:]
	}
	return kv, nil
}

func parseResistor(n *Netlist, toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("resistor needs nodes and value")
	}
	a, err := parseNode(toks[1])
	if err != nil {
		return err
	}
	b, err := parseNode(toks[2])
	if err != nil {
		return err
	}
	ohms, err := strconv.ParseFloat(toks[3], 64)
	if err != nil {
		return fmt.Errorf("bad resistance %q", toks[3])
	}
	kv, err := parseKV(toks[4:])
	if err != nil {
		return err
	}
	r := Resistor{Name: toks[0][1:], A: a, B: b, Ohms: ohms, OnDie: kv["ondie"] == "1", Region: -1}
	if s, ok := kv["region"]; ok {
		if r.Region, err = strconv.Atoi(s); err != nil {
			return fmt.Errorf("bad region %q", s)
		}
	}
	n.Resistors = append(n.Resistors, r)
	return nil
}

func parseCapacitor(n *Netlist, toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("capacitor needs nodes and value")
	}
	a, err := parseNode(toks[1])
	if err != nil {
		return err
	}
	b, err := parseNode(toks[2])
	if err != nil {
		return err
	}
	f, err := strconv.ParseFloat(toks[3], 64)
	if err != nil {
		return fmt.Errorf("bad capacitance %q", toks[3])
	}
	kv, err := parseKV(toks[4:])
	if err != nil {
		return err
	}
	gf := 0.0
	if s, ok := kv["gatefrac"]; ok {
		if gf, err = strconv.ParseFloat(s, 64); err != nil {
			return fmt.Errorf("bad gatefrac %q", s)
		}
	}
	cap := Capacitor{Name: toks[0][1:], A: a, B: b, Farads: f, GateFrac: gf, Region: -1}
	if s, ok := kv["region"]; ok {
		if cap.Region, err = strconv.Atoi(s); err != nil {
			return fmt.Errorf("bad region %q", s)
		}
	}
	n.Caps = append(n.Caps, cap)
	return nil
}

func parseSource(n *Netlist, toks []string) error {
	if len(toks) < 3 {
		return fmt.Errorf("source needs node and waveform")
	}
	a, err := parseNode(toks[1])
	if err != nil {
		return err
	}
	wave, rest, err := parseWave(toks[2:])
	if err != nil {
		return err
	}
	kv, err := parseKV(rest)
	if err != nil {
		return err
	}
	src := CurrentSource{Name: toks[0][1:], A: a, Wave: wave, Region: -1}
	if s, ok := kv["leffsens"]; ok {
		if src.LeffSens, err = strconv.ParseFloat(s, 64); err != nil {
			return fmt.Errorf("bad leffsens %q", s)
		}
	}
	if s, ok := kv["region"]; ok {
		if src.Region, err = strconv.Atoi(s); err != nil {
			return fmt.Errorf("bad region %q", s)
		}
	}
	src.Leakage = kv["leakage"] == "1"
	n.Sources = append(n.Sources, src)
	return nil
}

func parsePad(n *Netlist, toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("pad needs node, vdd, rpin")
	}
	node, err := parseNode(toks[1])
	if err != nil {
		return err
	}
	vdd, err := strconv.ParseFloat(toks[2], 64)
	if err != nil {
		return fmt.Errorf("bad vdd %q", toks[2])
	}
	rpin, err := strconv.ParseFloat(toks[3], 64)
	if err != nil {
		return fmt.Errorf("bad rpin %q", toks[3])
	}
	kv, err := parseKV(toks[4:])
	if err != nil {
		return err
	}
	n.Pads = append(n.Pads, Pad{Name: toks[0][1:], Node: node, VDD: vdd, Rpin: rpin, OnDie: kv["ondie"] == "1"})
	return nil
}

// parseWave parses one waveform expression from the token stream,
// returning the waveform and the remaining tokens.
func parseWave(toks []string) (Waveform, []string, error) {
	if len(toks) < 3 || toks[1] != "(" {
		return nil, nil, fmt.Errorf("expected waveform, got %v", toks)
	}
	kind := toks[0]
	rest := toks[2:]
	switch kind {
	case "DC":
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad DC value %q", rest[0])
		}
		if len(rest) < 2 || rest[1] != ")" {
			return nil, nil, fmt.Errorf("unclosed DC()")
		}
		return DC(v), rest[2:], nil
	case "PWL":
		var vals []float64
		i := 0
		for ; i < len(rest) && rest[i] != ")"; i++ {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad PWL value %q", rest[i])
			}
			vals = append(vals, v)
		}
		if i == len(rest) {
			return nil, nil, fmt.Errorf("unclosed PWL()")
		}
		if len(vals)%2 != 0 || len(vals) == 0 {
			return nil, nil, fmt.Errorf("PWL needs time/value pairs")
		}
		ts := make([]float64, len(vals)/2)
		vs := make([]float64, len(vals)/2)
		for k := range ts {
			ts[k] = vals[2*k]
			vs[k] = vals[2*k+1]
		}
		p, err := NewPWL(ts, vs)
		if err != nil {
			return nil, nil, err
		}
		return p, rest[i+1:], nil
	case "PULSE":
		if len(rest) < 8 || rest[7] != ")" {
			return nil, nil, fmt.Errorf("PULSE needs 7 values")
		}
		var v [7]float64
		for k := 0; k < 7; k++ {
			f, err := strconv.ParseFloat(rest[k], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad PULSE value %q", rest[k])
			}
			v[k] = f
		}
		return &Pulse{Low: v[0], High: v[1], Delay: v[2], Rise: v[3], Width: v[4], Fall: v[5], Period: v[6]}, rest[8:], nil
	case "PER":
		period, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad PER period %q", rest[0])
		}
		inner, rem, err := parseWave(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		if len(rem) == 0 || rem[0] != ")" {
			return nil, nil, fmt.Errorf("unclosed PER()")
		}
		return &Periodic{Inner: inner, Period: period}, rem[1:], nil
	case "SCALE":
		gain, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad SCALE gain %q", rest[0])
		}
		inner, rem, err := parseWave(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		if len(rem) == 0 || rem[0] != ")" {
			return nil, nil, fmt.Errorf("unclosed SCALE()")
		}
		return &Scaled{Inner: inner, Gain: gain}, rem[1:], nil
	default:
		return nil, nil, fmt.Errorf("unknown waveform %q", kind)
	}
}
