package cancel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPollNilAndLiveContexts(t *testing.T) {
	if err := Poll(nil, "x", 0); err != nil {
		t.Fatalf("nil context must disable polling, got %v", err)
	}
	if err := Poll(context.Background(), "x", 0); err != nil {
		t.Fatalf("live context must poll clean, got %v", err)
	}
}

func TestPollCanceled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Poll(ctx, "transient", 7)
	if err == nil {
		t.Fatal("canceled context must return an error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error must wrap ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error must wrap context.Canceled: %v", err)
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error must be a *cancel.Error: %T", err)
	}
	if ce.Stage != "transient" || ce.Unit != 7 {
		t.Errorf("structured fields lost: %+v", ce)
	}
}

func TestPollDeadline(t *testing.T) {
	ctx, cancelFn := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelFn()
	err := Poll(ctx, "montecarlo", -1)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error must wrap both sentinels: %v", err)
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty error text")
	}
}
