// Package cancel defines the repo-wide cancellation contract for the
// long-running solve loops. Every hot loop (transient time stepping,
// Monte Carlo sampling, the Galerkin per-basis fan-out) polls its
// context at natural unit boundaries — one time step, one sample, one
// basis solve — and stops with a structured *Error that wraps both the
// ErrCanceled sentinel and the context's own error, so callers can
// distinguish "the job was canceled" (errors.Is(err, cancel.ErrCanceled))
// from numerical failure, and still see whether the cause was an
// explicit cancel or a deadline (errors.Is(err, context.DeadlineExceeded)).
//
// The contract is: a canceled analysis returns within one unit of work
// of the cancellation, leaves no goroutines behind, and leaves shared
// solver state (factors, numguard ladders) reusable — cancellation is
// an ordinary early return, never a panic or a poisoned state.
package cancel

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel every cancellation-induced error wraps.
// Test with errors.Is(err, cancel.ErrCanceled).
var ErrCanceled = errors.New("analysis canceled")

// Error reports where a solve stopped when its context ended. It wraps
// both ErrCanceled and the context error, so errors.Is works against
// either (and against context.DeadlineExceeded for expired deadlines).
type Error struct {
	// Stage names the loop that observed the cancellation
	// ("transient", "montecarlo", "galerkin.decoupled", ...).
	Stage string
	// Unit is the loop index at which the solve stopped (time step,
	// sample or basis term, per Stage); -1 when not meaningful.
	Unit int
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error formats the diagnosis.
func (e *Error) Error() string {
	if e.Unit >= 0 {
		return fmt.Sprintf("cancel: %s stopped at unit %d: %v", e.Stage, e.Unit, e.Cause)
	}
	return fmt.Sprintf("cancel: %s stopped: %v", e.Stage, e.Cause)
}

// Unwrap exposes both the sentinel and the context cause.
func (e *Error) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// Poll returns nil when ctx is nil (cancellation disabled) or still
// live, and a structured *Error once the context has been canceled or
// its deadline has passed. It is cheap enough to call once per time
// step / sample / basis solve.
func Poll(ctx context.Context, stage string, unit int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &Error{Stage: stage, Unit: unit, Cause: err}
	}
	return nil
}
