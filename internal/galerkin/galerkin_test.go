package galerkin

import (
	"math"
	"testing"

	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/obs"
	"opera/internal/pce"
	"opera/internal/quad"
	"opera/internal/sparse"
	"opera/internal/transient"
)

// smallGrid builds a 3x3 mesh with a pad and two drains.
func smallGrid() *netlist.Netlist {
	id := func(r, c int) int { return r*3 + c }
	nl := &netlist.Netlist{NumNodes: 9}
	name := 0
	addR := func(a, b int) {
		nl.Resistors = append(nl.Resistors, netlist.Resistor{
			Name: string(rune('a' + name)), A: a, B: b, Ohms: 2, OnDie: true})
		name++
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if c < 2 {
				addR(id(r, c), id(r, c+1))
			}
			if r < 2 {
				addR(id(r, c), id(r+1, c))
			}
		}
	}
	for i := 0; i < 9; i++ {
		nl.Caps = append(nl.Caps, netlist.Capacitor{
			Name: string(rune('a' + i)), A: i, B: netlist.Ground, Farads: 1e-10, GateFrac: 0.4})
	}
	pulse := &netlist.Pulse{Low: 0, High: 0.02, Delay: 2e-10, Rise: 1e-10, Width: 4e-10, Fall: 1e-10, Period: 2e-9}
	nl.Sources = []netlist.CurrentSource{
		{Name: "s1", A: id(2, 2), Wave: pulse, LeffSens: 1, Region: 0},
		{Name: "s2", A: id(1, 1), Wave: netlist.DC(0.005), LeffSens: 1, Region: 1},
	}
	nl.Pads = []netlist.Pad{{Name: "p", Node: id(0, 0), VDD: 1.2, Rpin: 0.2, OnDie: true}}
	return nl
}

const (
	tStep  = 5e-11
	tSteps = 40
)

// quadratureReference computes E[x(t)] and Var(x(t)) at every node and
// step by tensor Gauss–Hermite quadrature over (ξG, ξL): each quadrature
// node is one deterministic transient solve. Exact up to quadrature
// truncation (the response is analytic in ξ), so it is a noise-free
// reference unlike Monte Carlo.
func quadratureReference(t *testing.T, sys *mna.System, npts int) (mean, variance [][]float64) {
	t.Helper()
	rule, err := quad.GaussHermite(npts)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := tSteps + 1
	mean = alloc2(nsteps, sys.N)
	m2 := alloc2(nsteps, sys.N)
	for a, xg := range rule.Nodes {
		for b, xl := range rule.Nodes {
			w := rule.Weights[a] * rule.Weights[b]
			g, c, rhs := sys.Realize(xg, xl)
			err := transient.Run(g, c, rhs,
				transient.Options{Step: tStep, Steps: tSteps, Method: transient.BackwardEuler},
				func(step int, _ float64, x []float64) {
					for i, xi := range x {
						mean[step][i] += w * xi
						m2[step][i] += w * xi * xi
					}
				})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	variance = alloc2(nsteps, sys.N)
	for s := range variance {
		for i := range variance[s] {
			variance[s][i] = m2[s][i] - mean[s][i]*mean[s][i]
		}
	}
	return mean, variance
}

func alloc2(a, b int) [][]float64 {
	m := make([][]float64, a)
	for i := range m {
		m[i] = make([]float64, b)
	}
	return m
}

func runGalerkin(t *testing.T, sys *mna.System, order int, opts Options) (mean, variance [][]float64, res Result) {
	t.Helper()
	basis := pce.NewHermiteBasis(2, order)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := opts.Steps + 1
	mean = alloc2(nsteps, sys.N)
	variance = alloc2(nsteps, sys.N)
	res, err = Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < sys.N; i++ {
			mean[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			variance[step][i] = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return mean, variance, res
}

func TestGalerkinMatchesQuadratureReference(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	refMean, refVar := quadratureReference(t, sys, 7)
	opts := Options{Step: tStep, Steps: tSteps}
	mean, variance, res := runGalerkin(t, sys, 2, opts)
	if res.Factorer != "block-cholesky" {
		t.Errorf("expected SPD augmented system, factored with %s", res.Factorer)
	}
	if res.AugmentedN != 9*6 {
		t.Errorf("augmented size %d, want 54", res.AugmentedN)
	}
	// Mean must match to a fraction of the nominal drop; variance to a
	// few percent (order-2 truncation).
	for s := 0; s <= tSteps; s++ {
		for i := 0; i < sys.N; i++ {
			if d := math.Abs(mean[s][i] - refMean[s][i]); d > 2e-5 {
				t.Fatalf("mean mismatch at step %d node %d: %g vs %g", s, i, mean[s][i], refMean[s][i])
			}
			if refVar[s][i] > 1e-12 {
				rel := math.Abs(variance[s][i]-refVar[s][i]) / refVar[s][i]
				if rel > 0.05 {
					t.Fatalf("variance mismatch at step %d node %d: %g vs %g (rel %g)",
						s, i, variance[s][i], refVar[s][i], rel)
				}
			}
		}
	}
}

func TestOrder3ImprovesOnOrder2(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	refMean, refVar := quadratureReference(t, sys, 8)
	opts := Options{Step: tStep, Steps: tSteps}
	_, v2, _ := runGalerkin(t, sys, 2, opts)
	_, v3, _ := runGalerkin(t, sys, 3, opts)
	_ = refMean
	// Compare total relative variance error at the final step.
	e2, e3 := 0.0, 0.0
	s := tSteps
	for i := 0; i < sys.N; i++ {
		if refVar[s][i] > 1e-12 {
			e2 += math.Abs(v2[s][i]-refVar[s][i]) / refVar[s][i]
			e3 += math.Abs(v3[s][i]-refVar[s][i]) / refVar[s][i]
		}
	}
	t.Logf("variance error: order2 %.3g, order3 %.3g", e2, e3)
	if e3 > e2 {
		t.Errorf("order-3 variance error %g should not exceed order-2 %g", e3, e2)
	}
}

func TestLinearRHSOnlyIsExact(t *testing.T) {
	// With a deterministic operator and an RHS linear in ξ, the response
	// is exactly linear in ξ: an order-1 expansion is exact, and the
	// decoupled path applies automatically.
	nl := smallGrid()
	for i := range nl.Resistors {
		nl.Resistors[i].OnDie = false
	}
	for i := range nl.Pads {
		nl.Pads[i].OnDie = false
	}
	for i := range nl.Caps {
		nl.Caps[i].GateFrac = 0
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 1)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	if !gsys.RHSOnly() {
		t.Fatal("system should be RHS-only")
	}
	opts := Options{Step: tStep, Steps: 20}
	type snap struct{ coeffs [][]float64 }
	var last snap
	res, err := Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		if step == opts.Steps {
			last.coeffs = alloc2(len(coeffs), sys.N)
			for m := range coeffs {
				copy(last.coeffs[m], coeffs[m])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoupled {
		t.Error("decoupled path not taken")
	}
	// Reference: realize at ξ = (0.7, -1.3) and compare pointwise —
	// exactness means the PCE evaluated at ξ equals the deterministic
	// solve at ξ.
	xg, xl := 0.7, -1.3
	g, c, rhs := sys.Realize(xg, xl)
	var want []float64
	err = transient.Run(g, c, rhs,
		transient.Options{Step: tStep, Steps: 20, Method: transient.BackwardEuler},
		func(step int, _ float64, x []float64) {
			if step == 20 {
				want = append([]float64(nil), x...)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the expansion at (xg, xl): ψ = [1, ξG, ξL] for Hermite
	// order 1.
	psi := make([]float64, basis.Size())
	basis.EvalAll([]float64{xg, xl}, psi)
	for i := 0; i < sys.N; i++ {
		got := 0.0
		for m := range psi {
			got += last.coeffs[m][i] * psi[m]
		}
		if math.Abs(got-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("node %d: PCE %g vs deterministic %g", i, got, want[i])
		}
	}
}

func TestDecoupledEqualsCoupled(t *testing.T) {
	nl := smallGrid()
	for i := range nl.Resistors {
		nl.Resistors[i].OnDie = false
	}
	for i := range nl.Pads {
		nl.Pads[i].OnDie = false
	}
	for i := range nl.Caps {
		nl.Caps[i].GateFrac = 0
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 15}
	mean1, var1, res1 := runGalerkin(t, sys, 2, opts)
	optsC := opts
	optsC.ForceCoupled = true
	mean2, var2, res2 := runGalerkin(t, sys, 2, optsC)
	if !res1.Decoupled || res2.Decoupled {
		t.Fatalf("path selection wrong: %v %v", res1.Decoupled, res2.Decoupled)
	}
	for s := range mean1 {
		for i := range mean1[s] {
			if math.Abs(mean1[s][i]-mean2[s][i]) > 1e-10 {
				t.Fatalf("means differ at step %d node %d", s, i)
			}
			if math.Abs(var1[s][i]-var2[s][i]) > 1e-12 {
				t.Fatalf("variances differ at step %d node %d", s, i)
			}
		}
	}
}

func TestAssembledMatricesSymmetric(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	gh := gsys.AssembleG()
	ch := gsys.AssembleC()
	if !gh.IsSymmetric(1e-10) {
		t.Error("G̃ not symmetric")
	}
	if !ch.IsSymmetric(1e-20) {
		t.Error("C̃ not symmetric")
	}
	if gh.Rows != 54 {
		t.Errorf("G̃ is %dx%d, want 54", gh.Rows, gh.Cols)
	}
	// Block (0,0) of G̃ is Ga; block (0,1) is Gg (Hermite coupling 1).
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(gh.At(i, j)-sys.Ga.At(i, j)) > 1e-12 {
				t.Fatalf("block (0,0) != Ga at (%d,%d)", i, j)
			}
			if math.Abs(gh.At(i, 9+j)-sys.Gg.At(i, j)) > 1e-12 {
				t.Fatalf("block (0,1) != Gg at (%d,%d)", i, j)
			}
		}
	}
}

func TestOrderingOptions(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 5}
	var ref [][]float64
	for _, ord := range []Ordering{OrderND, OrderRCM, OrderMD, OrderNatural} {
		opts.Ordering = ord
		mean, _, _ := runGalerkin(t, sys, 2, opts)
		if ref == nil {
			ref = mean
			continue
		}
		for s := range mean {
			for i := range mean[s] {
				if math.Abs(mean[s][i]-ref[s][i]) > 1e-9 {
					t.Fatalf("%v: solution differs at step %d node %d", ord, s, i)
				}
			}
		}
	}
}

func TestForceLU(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	// ForceLU is exercised through factorize's fallback: assemble an
	// indefinite-looking system by negating G̃ is artificial; instead
	// just verify the LU fallback machinery directly.
	a := sparse.FromDense([][]float64{{0, 1}, {1, 0}}) // not PD, invertible
	s, kind, err := factorize(a, OrderNatural, false)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "lu" {
		t.Errorf("factorizer %q, want lu", kind)
	}
	x := make([]float64, 2)
	s.SolveTo(x, []float64{3, 4})
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("LU fallback solve wrong: %v", x)
	}
	_ = gsys
}

func TestValidateRejectsBadSystems(t *testing.T) {
	basis := pce.NewHermiteBasis(2, 2)
	s := &System{N: 0, Basis: basis}
	if err := s.Validate(); err == nil {
		t.Error("zero-node system accepted")
	}
	s = &System{N: 3, Basis: basis, RHS: func(float64, [][]float64) {}}
	if err := s.Validate(); err == nil {
		t.Error("system without G terms accepted")
	}
	s = &System{
		N: 3, Basis: basis,
		GTerms: []Term{{Coupling: sparse.Identity(5), A: sparse.Identity(3)}},
		RHS:    func(float64, [][]float64) {},
	}
	if err := s.Validate(); err == nil {
		t.Error("mis-sized coupling accepted")
	}
}

func TestIterativePathMatchesDirect(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 25}
	meanD, varD, resD := runGalerkin(t, sys, 2, opts)
	opts.Iterative = true
	opts.Obs = obs.New("test")
	meanI, varI, resI := runGalerkin(t, sys, 2, opts)
	if resI.Factorer != "cg+mean-precond" {
		t.Fatalf("iterative path not taken: %s", resI.Factorer)
	}
	cgIters := opts.Obs.Registry().Counter("galerkin.cg_iterations_total").Value()
	if cgIters == 0 {
		t.Error("no CG iterations recorded")
	}
	t.Logf("direct %s vs iterative %s (%d CG iterations over %d steps)",
		resD.Factorer, resI.Factorer, cgIters, opts.Steps)
	for s := range meanD {
		for i := range meanD[s] {
			if math.Abs(meanD[s][i]-meanI[s][i]) > 1e-8 {
				t.Fatalf("means differ at step %d node %d: %g vs %g", s, i, meanD[s][i], meanI[s][i])
			}
			if math.Abs(varD[s][i]-varI[s][i]) > 1e-10 {
				t.Fatalf("variances differ at step %d node %d", s, i)
			}
		}
	}
}

// TestEq14VariableCombination verifies the paper's Eq. 14 claim: for a
// linear conductance model where the W and T perturbation matrices are
// scalings of Ga, the separated three-variable (ξW, ξT, ξL) Galerkin
// solution has exactly the same mean and variance as the reduced
// two-variable system with the combined geometry variable
// ξG = (d·ξW + e·ξT)/√(d²+e²), KG = √(KW²+KT²) — total-degree Hermite
// spaces are rotation invariant.
func TestEq14VariableCombination(t *testing.T) {
	nl := smallGrid()
	spec3 := mna.DefaultThreeVarSpec()
	sys3, err := mna.BuildThreeVar(nl, spec3)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := mna.Build(nl, spec3.Combine())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 20}
	// Two-variable run.
	mean2, var2, _ := runGalerkin(t, sys2, 2, opts)
	// Three-variable run.
	basis3 := pce.NewHermiteBasis(3, 2)
	gsys3, err := FromThreeVar(sys3, basis3)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := opts.Steps + 1
	mean3 := alloc2(nsteps, sys3.N)
	var3 := alloc2(nsteps, sys3.N)
	if _, err := Solve(gsys3, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < sys3.N; i++ {
			mean3[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis3.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			var3[step][i] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= opts.Steps; s++ {
		for i := 0; i < sys3.N; i++ {
			if d := math.Abs(mean2[s][i] - mean3[s][i]); d > 1e-10 {
				t.Fatalf("Eq. 14 mean mismatch at step %d node %d: %g", s, i, d)
			}
			if d := math.Abs(var2[s][i] - var3[s][i]); d > 1e-12 {
				t.Fatalf("Eq. 14 variance mismatch at step %d node %d: %g vs %g",
					s, i, var2[s][i], var3[s][i])
			}
		}
	}
}

// TestThreeVarRealizeConsistency checks that the separated model's
// sampled realizations match the combined model's when evaluated at the
// corresponding ξG.
func TestThreeVarRealizeConsistency(t *testing.T) {
	nl := smallGrid()
	spec3 := mna.DefaultThreeVarSpec()
	sys3, err := mna.BuildThreeVar(nl, spec3)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := mna.Build(nl, spec3.Combine())
	if err != nil {
		t.Fatal(err)
	}
	xiW, xiT, xiL := 0.8, -1.1, 0.4
	kg := spec3.Combine().KG
	xiG := (spec3.KW*xiW + spec3.KT*xiT) / kg
	g3, c3, _ := sys3.Realize(xiW, xiT, xiL)
	g2, c2, _ := sys2.Realize(xiG, xiL)
	d := sparse.Add(1, g3, -1, g2)
	for _, v := range d.Val {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("realized G differs by %g", v)
		}
	}
	dc := sparse.Add(1, c3, -1, c2)
	for _, v := range dc.Val {
		if math.Abs(v) > 1e-24 {
			t.Fatalf("realized C differs by %g", v)
		}
	}
}

func TestMemoryBudgetSwitchesToIterative(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-byte budget forces the iterative fallback.
	res, err := Solve(gsys, Options{Step: tStep, Steps: 5, MemoryBudget: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factorer != "cg+mean-precond" {
		t.Errorf("budgeted solve used %s, want iterative fallback", res.Factorer)
	}
	// A negative budget disables the check (direct path).
	res, err = Solve(gsys, Options{Step: tStep, Steps: 5, MemoryBudget: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factorer != "block-cholesky" {
		t.Errorf("unbudgeted solve used %s", res.Factorer)
	}
}

// TestCorrelatedMatchesEquivalentCombined verifies the §5 PCA route:
// with W and T correlated at coefficient ρ (and Leff independent), the
// response statistics must equal those of the combined two-variable
// model with KG_eff = √(σW² + σT² + 2ρσWσT) — the variance of the sum
// of correlated Gaussians.
func TestCorrelatedMatchesEquivalentCombined(t *testing.T) {
	nl := smallGrid()
	sW, sT, sL := 0.20/3, 0.15/3, 0.20/3
	rho := 0.6
	cov := [][]float64{
		{sW * sW, rho * sW * sT, 0},
		{rho * sW * sT, sT * sT, 0},
		{0, 0, sL * sL},
	}
	corr, err := mna.BuildCorrelated(nl, cov)
	if err != nil {
		t.Fatal(err)
	}
	kgEff := math.Sqrt(sW*sW + sT*sT + 2*rho*sW*sT)
	comb, err := mna.Build(nl, mna.VariationSpec{KG: kgEff, KCL: sL, KIL: sL})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 20}
	mean2, var2, _ := runGalerkin(t, comb, 2, opts)

	basis3 := pce.NewHermiteBasis(3, 2)
	gsys, err := FromCorrelated(corr, basis3)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := opts.Steps + 1
	mean3 := alloc2(nsteps, corr.N)
	var3 := alloc2(nsteps, corr.N)
	if _, err := Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < corr.N; i++ {
			mean3[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis3.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			var3[step][i] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= opts.Steps; s++ {
		for i := 0; i < corr.N; i++ {
			if d := math.Abs(mean2[s][i] - mean3[s][i]); d > 1e-9 {
				t.Fatalf("correlated mean mismatch at step %d node %d: %g", s, i, d)
			}
			if d := math.Abs(var2[s][i] - var3[s][i]); d > 1e-11 {
				t.Fatalf("correlated variance mismatch at step %d node %d: %g vs %g",
					s, i, var2[s][i], var3[s][i])
			}
		}
	}
}

// TestCorrelatedDiagonalEqualsThreeVar: a diagonal covariance must
// reproduce the independent three-variable model (up to principal-axis
// permutation, which leaves moments unchanged).
func TestCorrelatedDiagonalEqualsThreeVar(t *testing.T) {
	nl := smallGrid()
	spec3 := mna.DefaultThreeVarSpec()
	cov := [][]float64{
		{spec3.KW * spec3.KW, 0, 0},
		{0, spec3.KT * spec3.KT, 0},
		{0, 0, spec3.KCL * spec3.KCL},
	}
	// Note: the three-var model uses KCL for C and KIL for currents;
	// the correlated model ties both to δL. Use matching values.
	corr, err := mna.BuildCorrelated(nl, cov)
	if err != nil {
		t.Fatal(err)
	}
	sys3, err := mna.BuildThreeVar(nl, mna.ThreeVarSpec{
		KW: spec3.KW, KT: spec3.KT, KCL: spec3.KCL, KIL: spec3.KCL,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 15}
	basis := pce.NewHermiteBasis(3, 2)
	run := func(gsys *System) ([][]float64, [][]float64) {
		nsteps := opts.Steps + 1
		mean := alloc2(nsteps, corr.N)
		variance := alloc2(nsteps, corr.N)
		if _, err := Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
			for i := 0; i < corr.N; i++ {
				mean[step][i] = coeffs[0][i]
				v := 0.0
				for m := 1; m < basis.Size(); m++ {
					v += coeffs[m][i] * coeffs[m][i]
				}
				variance[step][i] = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		return mean, variance
	}
	gc, err := FromCorrelated(corr, basis)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := FromThreeVar(sys3, basis)
	if err != nil {
		t.Fatal(err)
	}
	mc, vc := run(gc)
	m3, v3 := run(g3)
	for s := range mc {
		for i := range mc[s] {
			if d := math.Abs(mc[s][i] - m3[s][i]); d > 1e-10 {
				t.Fatalf("diagonal-cov mean mismatch: %g", d)
			}
			if d := math.Abs(vc[s][i] - v3[s][i]); d > 1e-12 {
				t.Fatalf("diagonal-cov variance mismatch: %g", d)
			}
		}
	}
}

func TestForceLUMatchesBlockCholesky(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	meanD, varD, resD := runGalerkin(t, sys, 2, opts)
	opts.ForceLU = true
	meanL, varL, resL := runGalerkin(t, sys, 2, opts)
	if resD.Factorer != "block-cholesky" || resL.Factorer != "lu" {
		t.Fatalf("paths: %s / %s", resD.Factorer, resL.Factorer)
	}
	for s := range meanD {
		for i := range meanD[s] {
			if math.Abs(meanD[s][i]-meanL[s][i]) > 1e-8 {
				t.Fatalf("LU path mean differs at step %d node %d", s, i)
			}
			if math.Abs(varD[s][i]-varL[s][i]) > 1e-10 {
				t.Fatalf("LU path variance differs at step %d node %d", s, i)
			}
		}
	}
}

// TestVisitBlocksAreViews confirms the documented contract: the visit
// callback's slices are solver state that must be copied if retained.
func TestVisitBlocksContract(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	var first [][]float64
	var firstCopy [][]float64
	_, err = Solve(gsys, Options{Step: tStep, Steps: 3}, func(step int, _ float64, coeffs [][]float64) {
		if step == 0 {
			first = coeffs
			firstCopy = alloc2(len(coeffs), sys.N)
			for m := range coeffs {
				copy(firstCopy[m], coeffs[m])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the run, the retained views hold the *final* coefficients,
	// not the step-0 ones — callers must copy.
	same := true
	for m := range first {
		for i := range first[m] {
			if first[m][i] != firstCopy[m][i] {
				same = false
			}
		}
	}
	if same {
		t.Skip("solver buffers happened to be equal; contract untestable on this input")
	}
}

// TestQuadraticOperatorModel exercises the general (nonlinear-in-ξ)
// coupling path: G(ξ) = Ga + Gg·ξG + Gq·(ξG²−1) — the paper's §5 remark
// that "there are no limitations on the specific model to be chosen".
// Validated against a tensor-quadrature reference.
func TestQuadraticOperatorModel(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 3)
	// Quadratic sensitivity: a fraction of the linear one.
	gq := sys.Gg.Clone().Scale(0.3)
	quadCoeffs, err := basis.ProjectFunc(func(xi []float64) float64 {
		return xi[0]*xi[0] - 1
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	gsys.GTerms = append(gsys.GTerms, Term{
		Coupling: basis.CouplingExpansion(quadCoeffs),
		A:        gq,
	})
	opts := Options{Step: tStep, Steps: 15}
	nsteps := opts.Steps + 1
	mean := alloc2(nsteps, sys.N)
	variance := alloc2(nsteps, sys.N)
	if _, err := Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < sys.N; i++ {
			mean[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			variance[step][i] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Quadrature reference with the quadratic realization.
	rule, err := quad.GaussHermite(8)
	if err != nil {
		t.Fatal(err)
	}
	refMean := alloc2(nsteps, sys.N)
	refM2 := alloc2(nsteps, sys.N)
	for a, xg := range rule.Nodes {
		for b2, xl := range rule.Nodes {
			w := rule.Weights[a] * rule.Weights[b2]
			g, c, rhs := sys.Realize(xg, xl)
			g = sparse.Add(1, g, xg*xg-1, gq)
			err := transient.Run(g, c, rhs,
				transient.Options{Step: tStep, Steps: opts.Steps, Method: transient.BackwardEuler},
				func(step int, _ float64, x []float64) {
					for i, xi := range x {
						refMean[step][i] += w * xi
						refM2[step][i] += w * xi * xi
					}
				})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for s := 0; s <= opts.Steps; s++ {
		for i := 0; i < sys.N; i++ {
			if d := math.Abs(mean[s][i] - refMean[s][i]); d > 5e-5 {
				t.Fatalf("quadratic-model mean mismatch at step %d node %d: %g", s, i, d)
			}
			refVar := refM2[s][i] - refMean[s][i]*refMean[s][i]
			if refVar > 1e-11 {
				if rel := math.Abs(variance[s][i]-refVar) / refVar; rel > 0.08 {
					t.Fatalf("quadratic-model variance at step %d node %d: rel %g", s, i, rel)
				}
			}
		}
	}
}
