package galerkin

import (
	"fmt"

	"opera/internal/mna"
	"opera/internal/pce"
)

// FromCorrelated lifts a PCA-decorrelated system (correlated W/T/Leff
// variations, paper §5) into Galerkin form on a basis over the
// independent principal variables.
func FromCorrelated(sys *mna.CorrelatedSystem, basis *pce.Basis) (*System, error) {
	if basis.Dim() != sys.Dims {
		return nil, fmt.Errorf("galerkin: basis has %d dimensions, the correlated model needs %d", basis.Dim(), sys.Dims)
	}
	ident := basis.CouplingIdentity()
	gTerms := []Term{{Coupling: ident, A: sys.Ga}}
	cTerms := []Term{{Coupling: ident, A: sys.Ca}}
	for k := 0; k < sys.Dims; k++ {
		if sys.GSens[k] != 0 && sys.GOnDie.NNZ() > 0 {
			gTerms = append(gTerms, Term{
				Coupling: basis.CouplingLinear(k),
				A:        sys.GOnDie.Clone().Scale(sys.GSens[k]),
			})
		}
		if sys.CSens[k] != 0 && sys.CGate.NNZ() > 0 {
			cTerms = append(cTerms, Term{
				Coupling: basis.CouplingLinear(k),
				A:        sys.CGate.Clone().Scale(sys.CSens[k]),
			})
		}
	}
	proj := make([][]float64, sys.Dims)
	for k := 0; k < sys.Dims; k++ {
		proj[k] = basis.ProjectVariable(k)
	}
	n := sys.N
	ua := make([]float64, n)
	sens := make([][]float64, sys.Dims)
	for k := range sens {
		sens[k] = make([]float64, n)
	}
	rhs := func(t float64, out [][]float64) {
		sys.RHS(t, ua, sens)
		for m := range out {
			dst := out[m]
			for i := 0; i < n; i++ {
				v := 0.0
				for k := 0; k < sys.Dims; k++ {
					v += proj[k][m] * sens[k][i]
				}
				if m == 0 {
					v += ua[i]
				}
				dst[i] = v
			}
		}
	}
	return &System{N: n, Basis: basis, GTerms: gTerms, CTerms: cTerms, RHS: rhs}, nil
}
