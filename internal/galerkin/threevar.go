package galerkin

import (
	"fmt"

	"opera/internal/mna"
	"opera/internal/pce"
)

// FromThreeVar lifts the separated (ξW, ξT, ξL) system of the paper's
// Eq. 13 into Galerkin form on a three-dimensional basis. Because the
// linear conductance model makes the response a function of the
// combination d·ξW + e·ξT only, and total-degree Hermite spaces are
// invariant under rotations of the Gaussian variables, the projected
// moments coincide exactly with those of the reduced Eq. 14 system —
// the paper's justification for collapsing W and T into a single ξG.
// This constructor exists to state (and test) that claim, and for
// variation models where the W/T sensitivities do not share the Ga
// pattern and therefore cannot be combined.
func FromThreeVar(sys *mna.ThreeVarSystem, basis *pce.Basis) (*System, error) {
	if basis.Dim() != mna.Dims3 {
		return nil, fmt.Errorf("galerkin: basis has %d dimensions, the three-variable model needs %d", basis.Dim(), mna.Dims3)
	}
	ident := basis.CouplingIdentity()
	gTerms := []Term{{Coupling: ident, A: sys.Ga}}
	if sys.Gw.NNZ() > 0 {
		gTerms = append(gTerms, Term{Coupling: basis.CouplingLinear(mna.Dim3W), A: sys.Gw})
	}
	if sys.Gt.NNZ() > 0 {
		gTerms = append(gTerms, Term{Coupling: basis.CouplingLinear(mna.Dim3T), A: sys.Gt})
	}
	cTerms := []Term{{Coupling: ident, A: sys.Ca}}
	if sys.Cc.NNZ() > 0 {
		cTerms = append(cTerms, Term{Coupling: basis.CouplingLinear(mna.Dim3L), A: sys.Cc})
	}
	pw := basis.ProjectVariable(mna.Dim3W)
	pt := basis.ProjectVariable(mna.Dim3T)
	pl := basis.ProjectVariable(mna.Dim3L)
	n := sys.N
	ua := make([]float64, n)
	uw := make([]float64, n)
	ut := make([]float64, n)
	uc := make([]float64, n)
	rhs := func(t float64, out [][]float64) {
		sys.RHS(t, ua, uw, ut, uc)
		for m := range out {
			dst := out[m]
			wm, tm, lm := pw[m], pt[m], pl[m]
			for i := 0; i < n; i++ {
				v := wm*uw[i] + tm*ut[i] + lm*uc[i]
				if m == 0 {
					v += ua[i]
				}
				dst[i] = v
			}
		}
	}
	return &System{
		N:      n,
		Basis:  basis,
		GTerms: gTerms,
		CTerms: cTerms,
		RHS:    rhs,
	}, nil
}
