// Package galerkin implements the stochastic Galerkin method at the
// heart of OPERA (paper §4.2, §5): the truncated chaos expansion of the
// grid response is substituted into the stochastic MNA equation, the
// residual is made orthogonal to every retained basis function, and the
// resulting deterministic block system (Eq. 19)
//
//	(G̃ + s·C̃)·a(s) = Ũ(s),  G̃ = Σ_k T_k ⊗ G_k,  C̃ = Σ_k T_k ⊗ C_k
//
// is assembled sparsely, factored once, and stepped through time. The
// package also provides the §5.1 decoupled fast path: when only the
// right-hand side is stochastic, the block system splits into N+1
// independent solves sharing a single factorization of (G + sC)
// (Eq. 27).
package galerkin

import (
	"fmt"

	"opera/internal/mna"
	"opera/internal/pce"
	"opera/internal/sparse"
)

// Term is one summand of a stochastic operator in Galerkin form: the
// chaos coupling matrix (B×B, from pce.Basis coupling constructors)
// paired with the node-level matrix it multiplies.
type Term struct {
	Coupling *sparse.Matrix
	A        *sparse.Matrix
}

// System is a stochastic MNA system ready for Galerkin projection.
type System struct {
	// N is the node count; B the chaos basis size.
	N     int
	Basis *pce.Basis
	// GTerms and CTerms define G(ξ) and C(ξ).
	GTerms, CTerms []Term
	// RHS fills the orthonormal chaos coefficients of the excitation at
	// time t: out[m][i] is coefficient m at node i. len(out) = B.
	RHS func(t float64, out [][]float64)
}

// Validate checks dimensions.
func (s *System) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("galerkin: node count %d", s.N)
	}
	if s.Basis == nil {
		return fmt.Errorf("galerkin: missing basis")
	}
	if s.RHS == nil {
		return fmt.Errorf("galerkin: missing RHS")
	}
	b := s.Basis.Size()
	for _, set := range [][]Term{s.GTerms, s.CTerms} {
		for _, t := range set {
			if t.Coupling.Rows != b || t.Coupling.Cols != b {
				return fmt.Errorf("galerkin: coupling is %dx%d, basis size %d", t.Coupling.Rows, t.Coupling.Cols, b)
			}
			if t.A.Rows != s.N || t.A.Cols != s.N {
				return fmt.Errorf("galerkin: node matrix is %dx%d, want %d", t.A.Rows, t.A.Cols, s.N)
			}
		}
	}
	if len(s.GTerms) == 0 {
		return fmt.Errorf("galerkin: G(ξ) has no terms")
	}
	return nil
}

// RHSOnly reports whether the operator is deterministic (every coupling
// is the identity), which enables the §5.1 decoupled fast path.
func (s *System) RHSOnly() bool {
	for _, t := range s.GTerms {
		if !isIdentity(t.Coupling) {
			return false
		}
	}
	for _, t := range s.CTerms {
		if !isIdentity(t.Coupling) {
			return false
		}
	}
	return true
}

// FromMNA lifts a stamped two-variable (ξG, ξL) MNA system (the paper's
// Eq. 13–14 linear variation model) into Galerkin form on the given
// basis. Dimension mna.DimG of the basis carries the geometry variable
// and mna.DimL the channel-length variable; any Askey family may back
// either dimension (the paper's Gaussian case uses Hermite for both).
func FromMNA(sys *mna.System, basis *pce.Basis) (*System, error) {
	if basis.Dim() != mna.Dims {
		return nil, fmt.Errorf("galerkin: basis has %d dimensions, the MNA variation model needs %d", basis.Dim(), mna.Dims)
	}
	ident := basis.CouplingIdentity()
	cg := basis.CouplingLinear(mna.DimG)
	cl := basis.CouplingLinear(mna.DimL)
	gTerms := []Term{{Coupling: ident, A: sys.Ga}}
	if sys.Gg.NNZ() > 0 {
		gTerms = append(gTerms, Term{Coupling: cg, A: sys.Gg})
	}
	cTerms := []Term{{Coupling: ident, A: sys.Ca}}
	if sys.Cc.NNZ() > 0 {
		cTerms = append(cTerms, Term{Coupling: cl, A: sys.Cc})
	}
	// Excitation chaos coefficients: u = ua + ug·ξG + uc·ξL, with the
	// raw variables expanded on the (possibly non-Gaussian) basis.
	pg := basis.ProjectVariable(mna.DimG)
	pl := basis.ProjectVariable(mna.DimL)
	n := sys.N
	ua := make([]float64, n)
	ug := make([]float64, n)
	uc := make([]float64, n)
	rhs := func(t float64, out [][]float64) {
		sys.RHS(t, ua, ug, uc)
		for m := range out {
			dst := out[m]
			cgm, clm := pg[m], pl[m]
			for i := 0; i < n; i++ {
				v := cgm*ug[i] + clm*uc[i]
				if m == 0 {
					v += ua[i]
				}
				dst[i] = v
			}
		}
	}
	return &System{
		N:      n,
		Basis:  basis,
		GTerms: gTerms,
		CTerms: cTerms,
		RHS:    rhs,
	}, nil
}

// AssembleG builds the full block matrix G̃.
func (s *System) AssembleG() *sparse.Matrix {
	return sparse.AssembleBlocks(s.Basis.Size(), s.N, toBlockTerms(s.GTerms))
}

// AssembleC builds the full block matrix C̃.
func (s *System) AssembleC() *sparse.Matrix {
	if len(s.CTerms) == 0 {
		return sparse.NewMatrix(s.Basis.Size()*s.N, s.Basis.Size()*s.N)
	}
	return sparse.AssembleBlocks(s.Basis.Size(), s.N, toBlockTerms(s.CTerms))
}

func toBlockTerms(ts []Term) []sparse.BlockTerm {
	out := make([]sparse.BlockTerm, len(ts))
	for i, t := range ts {
		out[i] = sparse.BlockTerm{T: t.Coupling, A: t.A}
	}
	return out
}
