package galerkin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opera/internal/factor"
	"opera/internal/sparse"
)

// TestBlockAndFlatAssemblyAgree cross-validates the two independent
// augmented-matrix construction paths: factor.BlockMatrix (node-major,
// used by the solver) and sparse.AssembleBlocks (coefficient-major,
// Eq. 19 reference). The same random term set must produce the same
// matrix up to the block-layout permutation.
func TestBlockAndFlatAssemblyAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)  // nodes
		bs := 2 + rng.Intn(4) // basis size
		// Random symmetric node pattern with diagonal.
		tr := sparse.NewTriplet(n, n, 3*n)
		for i := 0; i < n; i++ {
			tr.Add(i, i, 1+rng.Float64())
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					v := rng.NormFloat64()
					tr.Add(i, j, v)
					tr.Add(j, i, v)
				}
			}
		}
		a1 := tr.Compile()
		a2 := a1.Clone()
		for i := range a2.Val {
			a2.Val[i] *= 0.3 * rng.NormFloat64()
		}
		a2 = sparse.Add(0.5, a2, 0.5, a2.Transpose())
		// Random symmetric couplings.
		randCoupling := func(identity bool) *sparse.Matrix {
			if identity {
				return sparse.Identity(bs)
			}
			d := make([][]float64, bs)
			for i := range d {
				d[i] = make([]float64, bs)
			}
			for i := 0; i < bs; i++ {
				for j := 0; j <= i; j++ {
					if rng.Float64() < 0.6 {
						v := rng.NormFloat64()
						d[i][j], d[j][i] = v, v
					}
				}
			}
			return sparse.FromDense(d)
		}
		t1 := randCoupling(true)
		t2 := randCoupling(false)

		// Path 1: block matrix on the union scalar pattern.
		pattern := sparse.Add(1, a1, 1, a2)
		bm := factor.NewBlockMatrix(pattern, bs)
		bm.AddTerm(t1, a1)
		bm.AddTerm(t2, a2)
		nodeMajor := bm.ToCSC() // index = node·bs + m

		// Path 2: Kronecker assembly (coefficient-major: m·n + node).
		flat := sparse.AssembleBlocks(bs, n, []sparse.BlockTerm{
			{T: t1, A: a1}, {T: t2, A: a2},
		})
		// Compare under the layout permutation.
		for i := 0; i < n*bs; i++ {
			for j := 0; j < n*bs; j++ {
				ni, mi := i/bs, i%bs
				nj, mj := j/bs, j%bs
				want := flat.At(mi*n+ni, mj*n+nj)
				got := nodeMajor.At(i, j)
				if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBlockCholeskyAgreesWithFlatCholesky solves the same random SPD
// augmented system through the block factorization and through a scalar
// Cholesky of the flattened matrix.
func TestBlockCholeskyAgreesWithFlatCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(8)
		bs := 2 + rng.Intn(3)
		// SPD mean matrix: Laplacian-like.
		tr := sparse.NewTriplet(n, n, 4*n)
		for i := 0; i < n; i++ {
			tr.Add(i, i, 3)
			if i+1 < n {
				tr.Add(i, i+1, -1)
				tr.Add(i+1, i, -1)
			}
		}
		a := tr.Compile()
		pert := a.Clone().Scale(0.05)
		coup := make([][]float64, bs)
		for i := range coup {
			coup[i] = make([]float64, bs)
		}
		for i := 0; i < bs; i++ {
			for j := 0; j <= i; j++ {
				v := 0.3 * rng.NormFloat64()
				coup[i][j], coup[j][i] = v, v
			}
		}
		tc := sparse.FromDense(coup)
		bm := factor.NewBlockMatrix(a, bs)
		bm.AddTerm(sparse.Identity(bs), a)
		bm.AddTerm(tc, pert)
		bf, err := factor.BlockCholesky(bm, nil)
		if err != nil {
			t.Fatalf("trial %d: block: %v", trial, err)
		}
		flatCSC := bm.ToCSC()
		sf, err := factor.Cholesky(flatCSC, nil)
		if err != nil {
			t.Fatalf("trial %d: flat: %v", trial, err)
		}
		rhs := make([]float64, n*bs)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n*bs)
		bf.Solve(x1, rhs)
		x2 := sf.Solve(rhs)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
				t.Fatalf("trial %d: solutions differ at %d: %g vs %g", trial, i, x1[i], x2[i])
			}
		}
	}
}
