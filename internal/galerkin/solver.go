package galerkin

import (
	"context"
	"errors"
	"fmt"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// Ordering selects the fill-reducing permutation for the augmented
// factorization.
type Ordering int

// Ordering choices.
const (
	OrderND Ordering = iota // nested dissection (default)
	OrderRCM
	OrderMD
	OrderNatural
	OrderAMD // approximate minimum degree
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderND:
		return "nd"
	case OrderRCM:
		return "rcm"
	case OrderMD:
		return "md"
	case OrderNatural:
		return "natural"
	case OrderAMD:
		return "amd"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Options configures the stochastic transient solve.
type Options struct {
	Step  float64 // fixed time step
	Steps int
	// Ordering for the augmented companion factorization.
	Ordering Ordering
	// Kernel selects the scalar Cholesky kernel for the direct rungs
	// (supernodal blocked panels by default; KernelScalar forces the
	// up-looking reference kernel — the ablation switch).
	Kernel factor.Kernel
	// ForceCoupled disables the automatic decoupled fast path (used by
	// the ablation benchmarks to measure its benefit).
	ForceCoupled bool
	// ForceLU skips the Cholesky attempt (the augmented Galerkin matrix
	// is SPD for realistic variation magnitudes; LU covers the rest).
	ForceLU bool
	// Iterative selects the §5.2 mean-preconditioned conjugate gradient
	// path instead of the direct block factorization.
	Iterative bool
	// Workers caps the worker pool of the decoupled fast path's
	// per-basis fan-out and the coupled paths' row-parallel block apply;
	// 0 or negative means GOMAXPROCS. Results are bit-identical for
	// every value.
	Workers int
	// MemoryBudget caps the block factor's value storage in bytes; when
	// the symbolic analysis predicts a larger factor, the solver
	// switches to the iterative path automatically (its memory is the
	// scalar factor's). 0 means 4 GiB; negative disables the check.
	MemoryBudget int64
	// Guard tunes the numerical-robustness layer (residual tolerance,
	// refinement caps, verification cadence). The zero value uses the
	// numguard defaults; the guard cannot be disabled.
	Guard numguard.Config
	// Obs, when non-nil, receives phase spans (order/factor/transient)
	// and solver metrics (galerkin.step_ms, galerkin.steps_total,
	// galerkin.cg_iterations_total, numguard.*). Nil disables
	// instrumentation at zero cost.
	Obs *obs.Tracer
	// Progress, when non-nil, is marked once per completed time step on
	// every solve path; a stall watchdog can poll it to distinguish a
	// slow solve from a hung one. Nil disables the marks.
	Progress *obs.Progress
	// Ctx, when non-nil, is polled at every time step (all three solve
	// paths) and before every per-basis solve on the decoupled path; a
	// canceled or expired context stops the solve within one step with
	// a structured error wrapping cancel.ErrCanceled, leaving factors
	// and the numguard ladder reusable. Nil disables the check.
	Ctx context.Context
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Step <= 0 {
		return fmt.Errorf("galerkin: step must be positive, got %g", o.Step)
	}
	if o.Steps < 1 {
		return fmt.Errorf("galerkin: need at least one step, got %d", o.Steps)
	}
	return nil
}

// linearSolver abstracts Cholesky/LU factors.
type linearSolver interface {
	SolveTo(x, b []float64)
}

// factorize tries Cholesky under the requested ordering and falls back
// to LU if the matrix is not numerically positive definite.
func factorize(a *sparse.Matrix, ord Ordering, forceLU bool) (linearSolver, string, error) {
	perm := permFor(a, ord)
	if !forceLU {
		f, err := factor.Cholesky(a, perm)
		if err == nil {
			return f, "cholesky", nil
		}
		if !errors.Is(err, factor.ErrNotPositiveDefinite) {
			return nil, "", err
		}
	}
	lu, err := factor.LU(a, perm)
	if err != nil {
		return nil, "", fmt.Errorf("galerkin: LU fallback failed: %w", err)
	}
	return lu, "lu", nil
}

func permFor(a *sparse.Matrix, ord Ordering) []int {
	switch ord {
	case OrderNatural:
		return nil
	case OrderRCM:
		return order.RCM(order.NewGraph(a))
	case OrderMD:
		return order.MinimumDegree(order.NewGraph(a))
	case OrderAMD:
		return order.AMD(order.NewGraph(a))
	default:
		return order.NestedDissection(order.NewGraph(a), 0)
	}
}

// Result carries solver telemetry. Quantitative counters that used to
// live here (CG iterations, ...) are on the obs registry now
// (galerkin.cg_iterations_total et al.); Result keeps the structural
// facts of the solve plus the guard report accessor.
type Result struct {
	Decoupled  bool
	Factorer   string // "block-cholesky", "cg+mean-precond" or "lu"
	AugmentedN int    // size of the augmented system
	FactorNNZ  int    // scalar-equivalent nnz of the factor (0 on the pure-CG rung)
	StepsRun   int

	// FactorFlops is the symbolic flop estimate of one numeric
	// factorization on the rung that served the solve; FillRatio is its
	// nnz(L)/nnz(upper(A)). Both are deterministic functions of pattern
	// and permutation — machine-independent cost metrics.
	FactorFlops int64
	FillRatio   float64
	// CondEst is the Hager/Higham 1-norm condition estimate of the
	// solved operator (0 when no direct rung produced a solver).
	CondEst float64

	// guard carries the numerical-robustness telemetry: residuals
	// verified, refinement sweeps, rung transitions, non-finite events.
	guard *numguard.Report
}

// Guard returns the numerical-robustness report of the solve (never
// nil after a successful Solve).
func (r Result) Guard() *numguard.Report { return r.guard }

// Solve runs the stochastic Galerkin transient. visit is called after
// the DC initialization (step 0) and after every time step with the
// chaos coefficient blocks: coeffs[m][i] is the coefficient of basis
// function m at node i. The slices are views into solver state — copy
// anything retained.
func Solve(sys *System, opts Options, visit func(step int, t float64, coeffs [][]float64)) (Result, error) {
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if sys.RHSOnly() && !opts.ForceCoupled {
		return solveDecoupled(sys, opts, visit)
	}
	if opts.Iterative {
		return solveCoupledIterative(sys, opts, visit)
	}
	return solveCoupled(sys, opts, visit)
}

// solveDecoupled exploits a deterministic operator (§5.1, Eq. 27): one
// n×n factorization, N+1 independent recursions. Every solve runs
// through the numguard escalation ladder (cholesky → lu → cg+ic0) with
// residual verification.
//
// The N+1 recursions are independent within each time step, so they fan
// out across a worker pool: basis m reads only blocks[m] and writes
// only blocks[m], each worker owns private cx/rhs scratch, and the
// shared ladder's Solve is concurrency-safe. Coefficients are therefore
// bit-identical for every worker count, including 1.
func solveDecoupled(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	tr := opts.Obs
	n, b := sys.N, sys.Basis.Size()
	spA := tr.Start("galerkin.assemble", obs.Int("n", n), obs.Int("basis", b))
	g0 := sumTerms(sys.GTerms, n)
	c0 := sumTerms(sys.CTerms, n)
	companion := sparse.Add(1, g0, 1/opts.Step, c0)
	spA.End()
	res := Result{Decoupled: true, AugmentedN: n}
	rep := &numguard.Report{}
	rep.Bind(tr.Registry())
	res.guard = rep
	spO := tr.Start("order", obs.String("ordering", opts.Ordering.String()))
	permComp := permFor(companion, opts.Ordering)
	permG0 := permFor(g0, opts.Ordering)
	spO.End()
	spF := tr.Start("factor")
	st := &factorStats{}
	lad := numguard.NewLadder("step", opts.Guard, companion, companion.NormInf(),
		scalarRungs(companion, permComp, opts.Kernel, opts.Workers, opts.Guard, opts.ForceLU, st), rep)
	if _, err := lad.Solver(0); err != nil {
		return Result{}, fmt.Errorf("galerkin: decoupled companion factorization: %w", err)
	}
	dcLad := numguard.NewLadder("dc", opts.Guard, g0, g0.NormInf(),
		scalarRungs(g0, permG0, opts.Kernel, opts.Workers, opts.Guard, opts.ForceLU, nil), rep)
	res.FactorNNZ, res.FactorFlops, res.FillRatio = st.nnz, st.flops, st.fill
	spF.SetAttrs(obs.String("rung", lad.Rung()), obs.Int("factor_nnz", res.FactorNNZ))
	spF.End()
	spT := tr.Start("transient", obs.Int("steps", opts.Steps))
	spT.MarkAllocsApprox() // per-basis fan-out allocates on worker goroutines
	defer spT.End()
	workers := parallel.Workers(opts.Workers)
	if workers > b {
		workers = b
	}
	reg := tr.Registry()
	reg.Gauge("parallel.workers").Set(float64(workers))
	stepMS := reg.Histogram("galerkin.step_ms", obs.MSBuckets)
	stepsTotal := reg.Counter("galerkin.steps_total")
	workerMS := make([]*obs.Histogram, workers)
	for w := range workerMS {
		workerMS[w] = reg.WorkerHistogram("galerkin.solve_ms", w, obs.MSBuckets)
	}
	blocks := make([][]float64, b)
	rhsBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		blocks[m] = make([]float64, n)
		rhsBlocks[m] = make([]float64, n)
	}
	// Per-worker step scratch: basis m's rhs assembly must not share
	// vectors across concurrent solves.
	type stepScratch struct{ cx, rhs []float64 }
	scratch := make([]stepScratch, workers)
	for w := range scratch {
		scratch[w] = stepScratch{cx: make([]float64, n), rhs: make([]float64, n)}
	}
	sys.RHS(0, rhsBlocks)
	if err := parallel.ForEach(workers, b, func(_, m int) error {
		if err := cancel.Poll(opts.Ctx, "galerkin.decoupled", m); err != nil {
			return err
		}
		if err := dcLad.Solve(0, blocks[m], rhsBlocks[m]); err != nil {
			return fmt.Errorf("galerkin: decoupled DC solve (basis %d): %w", m, err)
		}
		return nil
	}); err != nil {
		return Result{}, err
	}
	if visit != nil {
		visit(0, 0, blocks)
	}
	for k := 1; k <= opts.Steps; k++ {
		if err := cancel.Poll(opts.Ctx, "galerkin.decoupled", k); err != nil {
			return Result{}, err
		}
		t := float64(k) * opts.Step
		stepStart := time.Now()
		sys.RHS(t, rhsBlocks)
		if err := parallel.ForEach(workers, b, func(worker, m int) error {
			if err := cancel.Poll(opts.Ctx, "galerkin.decoupled", k); err != nil {
				return err
			}
			sc := &scratch[worker]
			var solveStart time.Time
			if workerMS[worker] != nil {
				solveStart = time.Now()
			}
			c0.MulVec(sc.cx, blocks[m])
			for i := 0; i < n; i++ {
				sc.rhs[i] = rhsBlocks[m][i] + sc.cx[i]/opts.Step
			}
			if err := lad.Solve(k, blocks[m], sc.rhs); err != nil {
				return fmt.Errorf("galerkin: decoupled step %d (basis %d): %w", k, m, err)
			}
			if workerMS[worker] != nil {
				workerMS[worker].ObserveSince(solveStart)
			}
			return nil
		}); err != nil {
			return Result{}, err
		}
		stepMS.ObserveSince(stepStart)
		stepsTotal.Inc()
		opts.Progress.Mark()
		if visit != nil {
			visit(k, t, blocks)
		}
		res.StepsRun = k
	}
	res.Factorer = lad.Rung()
	// Escalations can have moved the solve to a costlier factor.
	res.FactorNNZ, res.FactorFlops, res.FillRatio = st.nnz, st.flops, st.fill
	res.CondEst = lad.CondEstimate(n)
	return res, nil
}

// sumTerms adds the node matrices of a term list (couplings are
// identities on this path). The result is always freshly allocated:
// a single-term list must NOT return the term's own matrix, or the
// caller would mutate solver input through the alias.
func sumTerms(ts []Term, n int) *sparse.Matrix {
	if len(ts) == 0 {
		return sparse.NewMatrix(n, n)
	}
	acc := ts[0].A.Clone()
	for _, t := range ts[1:] {
		acc = sparse.Add(1, acc, 1, t.A)
	}
	return acc
}
