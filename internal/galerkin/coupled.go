package galerkin

import (
	"errors"
	"fmt"

	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/sparse"
)

// solveCoupled runs the general OPERA path. The augmented companion
// matrix G̃ + C̃/h is kept in block form — the scalar grid sparsity
// pattern with one dense (N+1)×(N+1) chaos block per entry — and
// factored once with the block Cholesky, whose elimination tree and
// fill are those of the *n-node* grid rather than the (N+1)·n scalar
// graph. The DC initialization G̃·a(0) = Ũ(0) is solved by conjugate
// gradients preconditioned with the companion factor (G̃ differs from
// it only by C̃/h, which is small at power-grid time constants), so the
// whole transient costs a single factorization. If the block Cholesky
// reports an indefinite matrix (possible under extreme variation
// magnitudes where the Gaussian linear model loses positivity), the
// solver falls back to scalar assembly with sparse LU.
func solveCoupled(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	n, b := sys.N, sys.Basis.Size()
	// Scalar union pattern over every operator term.
	pattern := unionScalarPattern(sys)
	perm := permFor(pattern, opts.Ordering)

	// Predict the block factor's memory from the scalar symbolic
	// analysis and fall back to the §5.2 iterative path when it exceeds
	// the budget: nnz(L_scalar)·B²·8 bytes of values.
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = 4 << 30
	}
	if budget > 0 {
		sym := factor.CholAnalyze(pattern, perm)
		need := int64(sym.LNNZ()) * int64(b*b) * 8
		if need > budget {
			return solveCoupledIterative(sys, opts, visit)
		}
	}

	// Companion G̃ + C̃/h and the separate C̃ (needed for stepping).
	comp := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		comp.AddTerm(t.Coupling, t.A)
	}
	var cBM *factor.BlockMatrix
	if len(sys.CTerms) > 0 {
		cBM = factor.NewBlockMatrix(pattern, b)
		for _, t := range sys.CTerms {
			cBM.AddTerm(t.Coupling, t.A)
			comp.AddTerm(t.Coupling.Clone().Scale(1/opts.Step), t.A)
		}
	}
	gBM := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		gBM.AddTerm(t.Coupling, t.A)
	}

	var fac *factor.BlockCholFactor
	if !opts.ForceLU {
		var err error
		fac, err = factor.BlockCholesky(comp, perm)
		if err != nil && !errors.Is(err, factor.ErrNotPositiveDefinite) {
			return Result{}, fmt.Errorf("galerkin: block factorization: %w", err)
		}
	}
	if fac == nil {
		return solveCoupledScalarLU(sys, opts, visit)
	}
	res := Result{Factorer: "block-cholesky", AugmentedN: n * b, FactorNNZ: fac.NNZ()}

	// Node-major state and workspaces.
	nb := n * b
	x := make([]float64, nb)
	rhs := make([]float64, nb)
	work := make([]float64, nb)
	rhsBlocks := make([][]float64, b)
	outBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		rhsBlocks[m] = make([]float64, n)
		outBlocks[m] = make([]float64, n)
	}
	pack := func(blocks [][]float64, dst []float64) {
		for m := 0; m < b; m++ {
			src := blocks[m]
			for i := 0; i < n; i++ {
				dst[i*b+m] = src[i]
			}
		}
	}
	unpack := func(src []float64, blocks [][]float64) {
		for m := 0; m < b; m++ {
			dst := blocks[m]
			for i := 0; i < n; i++ {
				dst[i] = src[i*b+m]
			}
		}
	}

	// DC init by companion-preconditioned CG on G̃.
	sys.RHS(0, rhsBlocks)
	pack(rhsBlocks, rhs)
	pre := iterative.PrecondFunc(func(z, r []float64) { fac.Solve(z, r) })
	if _, err := iterative.CG(gBM, x, rhs, iterative.CGOptions{
		Tol: 1e-12, MaxIter: 200, M: pre,
	}); err != nil {
		// Stiff step sizes can defeat the preconditioner; factor G̃
		// outright as a (rare) fallback.
		gf, gerr := factor.BlockCholesky(gBM, perm)
		if gerr != nil {
			return Result{}, fmt.Errorf("galerkin: DC solve: CG failed (%v) and G̃ factorization failed: %w", err, gerr)
		}
		gf.Solve(x, rhs)
	}
	if visit != nil {
		unpack(x, outBlocks)
		visit(0, 0, outBlocks)
	}
	for k := 1; k <= opts.Steps; k++ {
		t := float64(k) * opts.Step
		sys.RHS(t, rhsBlocks)
		pack(rhsBlocks, rhs)
		if cBM != nil {
			cBM.MulVec(work, x)
			for i := range rhs {
				rhs[i] += work[i] / opts.Step
			}
		}
		fac.Solve(x, rhs)
		if visit != nil {
			unpack(x, outBlocks)
			visit(k, t, outBlocks)
		}
		res.StepsRun = k
	}
	return res, nil
}

// unionScalarPattern returns the union sparsity pattern of every term's
// node matrix.
func unionScalarPattern(sys *System) *sparse.Matrix {
	var u *sparse.Matrix
	add := func(a *sparse.Matrix) {
		if u == nil {
			u = a
			return
		}
		u = sparse.Add(1, u, 1, a)
	}
	for _, t := range sys.GTerms {
		add(t.A)
	}
	for _, t := range sys.CTerms {
		add(t.A)
	}
	return u
}

// solveCoupledScalarLU is the fallback path: assemble the full scalar
// CSC augmented system (coefficient-major layout) and factor with
// partial-pivoting LU.
func solveCoupledScalarLU(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	n, b := sys.N, sys.Basis.Size()
	gHat := sys.AssembleG()
	cHat := sys.AssembleC()
	companion := sparse.Add(1, gHat, 1/opts.Step, cHat)
	perm := permFor(companion, opts.Ordering)
	comp, err := factor.LU(companion, perm)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: LU fallback: %w", err)
	}
	gSolve, err := factor.LU(gHat, perm)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: LU DC fallback: %w", err)
	}
	res := Result{Factorer: "lu", AugmentedN: n * b}
	x := make([]float64, n*b)
	rhsBig := make([]float64, n*b)
	work := make([]float64, n*b)
	blocks := make([][]float64, b)
	rhsBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		blocks[m] = x[m*n : (m+1)*n]
		rhsBlocks[m] = rhsBig[m*n : (m+1)*n]
	}
	sys.RHS(0, rhsBlocks)
	gSolve.SolveTo(x, rhsBig)
	if visit != nil {
		visit(0, 0, blocks)
	}
	for k := 1; k <= opts.Steps; k++ {
		t := float64(k) * opts.Step
		sys.RHS(t, rhsBlocks)
		cHat.MulVec(work, x)
		for i := range rhsBig {
			rhsBig[i] += work[i] / opts.Step
		}
		comp.SolveTo(x, rhsBig)
		if visit != nil {
			visit(k, t, blocks)
		}
		res.StepsRun = k
	}
	return res, nil
}
