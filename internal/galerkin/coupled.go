package galerkin

import (
	"errors"
	"fmt"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// solveCoupled runs the general OPERA path. The augmented companion
// matrix G̃ + C̃/h is kept in block form — the scalar grid sparsity
// pattern with one dense (N+1)×(N+1) chaos block per entry — and
// factored once with the block Cholesky, whose elimination tree and
// fill are those of the *n-node* grid rather than the (N+1)·n scalar
// graph. The DC initialization G̃·a(0) = Ũ(0) is solved by conjugate
// gradients preconditioned with the companion factor (G̃ differs from
// it only by C̃/h, which is small at power-grid time constants), so the
// whole transient costs a single factorization. If the block Cholesky
// reports an indefinite matrix (possible under extreme variation
// magnitudes where the Gaussian linear model loses positivity), the
// numguard escalation ladder takes over: scalar Cholesky on the
// expanded CSC system, then pivot-growth-checked LU, then IC(0)-
// preconditioned CG, with every transition recorded and every accepted
// solve residual-verified.
func solveCoupled(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	tr := opts.Obs
	n, b := sys.N, sys.Basis.Size()
	// Scalar union pattern over every operator term.
	spO := tr.Start("order", obs.String("ordering", opts.Ordering.String()), obs.Int("n", n))
	pattern := unionScalarPattern(sys)
	perm := permFor(pattern, opts.Ordering)
	spO.End()

	// Predict the block factor's memory from the scalar symbolic
	// analysis and fall back to the §5.2 iterative path when it exceeds
	// the budget: nnz(L_scalar)·B²·8 bytes of values.
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = 4 << 30
	}
	if budget > 0 {
		sym := factor.CholAnalyze(pattern, perm)
		need := int64(sym.LNNZ()) * int64(b*b) * 8
		if need > budget {
			return solveCoupledIterative(sys, opts, visit)
		}
	}

	spF := tr.Start("factor")
	// Companion G̃ + C̃/h and the separate C̃ (needed for stepping).
	spAsm := tr.Start("galerkin.assemble", obs.Int("n", n), obs.Int("basis", b))
	comp := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		comp.AddTerm(t.Coupling, t.A)
	}
	var cBM *factor.BlockMatrix
	if len(sys.CTerms) > 0 {
		cBM = factor.NewBlockMatrix(pattern, b)
		for _, t := range sys.CTerms {
			cBM.AddTerm(t.Coupling, t.A)
			comp.AddTerm(t.Coupling.Clone().Scale(1/opts.Step), t.A)
		}
	}
	gBM := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		gBM.AddTerm(t.Coupling, t.A)
	}
	spAsm.End()

	res := Result{AugmentedN: n * b}
	rep := &numguard.Report{}
	rep.Bind(tr.Registry())
	res.guard = rep
	st := &factorStats{}
	lad := numguard.NewLadder("step", opts.Guard, comp, comp.NormInf(),
		blockRungs(comp, perm, opts.Kernel, opts.Workers, opts.Guard, opts.ForceLU, st), rep)
	sol, err := lad.Solver(0)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: companion factorization: %w", err)
	}
	res.Factorer = lad.Rung()
	res.FactorNNZ, res.FactorFlops, res.FillRatio = st.nnz, st.flops, st.fill
	spF.SetAttrs(obs.String("rung", lad.Rung()), obs.Int("factor_nnz", res.FactorNNZ))
	spF.End()

	// Node-major state and workspaces.
	nb := n * b
	x := make([]float64, nb)
	rhs := make([]float64, nb)
	work := make([]float64, nb)
	rhsBlocks := make([][]float64, b)
	outBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		rhsBlocks[m] = make([]float64, n)
		outBlocks[m] = make([]float64, n)
	}
	pack := func(blocks [][]float64, dst []float64) {
		for m := 0; m < b; m++ {
			src := blocks[m]
			for i := 0; i < n; i++ {
				dst[i*b+m] = src[i]
			}
		}
	}
	unpack := func(src []float64, blocks [][]float64) {
		for m := 0; m < b; m++ {
			dst := blocks[m]
			for i := 0; i < n; i++ {
				dst[i] = src[i*b+m]
			}
		}
	}

	spT := tr.Start("transient", obs.Int("steps", opts.Steps))
	spT.MarkAllocsApprox() // row-partitioned parallel apply runs on worker goroutines
	defer spT.End()
	workers := parallel.Workers(opts.Workers)
	reg := tr.Registry()
	reg.Gauge("parallel.workers").Set(float64(workers))
	stepMS := reg.Histogram("galerkin.step_ms", obs.MSBuckets)
	stepsTotal := reg.Counter("galerkin.steps_total")
	cgIters := reg.Counter("galerkin.cg_iterations_total")

	// DC init by companion-preconditioned CG on G̃ (the companion factor
	// differs from G̃ only by C̃/h, small at power-grid time constants).
	sys.RHS(0, rhsBlocks)
	pack(rhsBlocks, rhs)
	pre := iterative.PrecondFunc(func(z, r []float64) { sol.SolveTo(z, r) })
	r0, cgErr := iterative.CG(gBM, x, rhs, iterative.CGOptions{
		Tol: 1e-12, MaxIter: 200, M: pre,
	})
	cgIters.Add(int64(r0.Iterations))
	if cgErr != nil || !numguard.Finite(x) {
		// Stiff step sizes can defeat the preconditioner; run the DC
		// solve through its own ladder on G̃ as a (rare) fallback.
		if cgErr == nil {
			cgErr = errors.New("non-finite DC solution")
			rep.NonFinite()
		}
		rep.AddTransition(numguard.Transition{
			Stage: "dc", From: "cg+companion-precond", To: "ladder",
			Reason: fmt.Sprintf("CG failed: %v", cgErr),
		})
		dcLad := numguard.NewLadder("dc", opts.Guard, gBM, gBM.NormInf(),
			blockRungs(gBM, perm, opts.Kernel, opts.Workers, opts.Guard, opts.ForceLU, nil), rep)
		if err := dcLad.Solve(0, x, rhs); err != nil {
			return Result{}, fmt.Errorf("galerkin: DC solve: %w", err)
		}
	}
	if visit != nil {
		unpack(x, outBlocks)
		visit(0, 0, outBlocks)
	}
	for k := 1; k <= opts.Steps; k++ {
		if err := cancel.Poll(opts.Ctx, "galerkin.coupled", k); err != nil {
			return Result{}, err
		}
		t := float64(k) * opts.Step
		stepStart := time.Now()
		sys.RHS(t, rhsBlocks)
		pack(rhsBlocks, rhs)
		if cBM != nil {
			// The gather-form apply is used at every worker count
			// (including 1) so the summation order — and therefore the
			// trajectory — never depends on Workers.
			cBM.MulVecSym(work, x, workers)
			for i := range rhs {
				rhs[i] += work[i] / opts.Step
			}
		}
		if err := lad.Solve(k, x, rhs); err != nil {
			return Result{}, fmt.Errorf("galerkin: step %d: %w", k, err)
		}
		stepMS.ObserveSince(stepStart)
		stepsTotal.Inc()
		opts.Progress.Mark()
		if visit != nil {
			unpack(x, outBlocks)
			visit(k, t, outBlocks)
		}
		res.StepsRun = k
	}
	res.Factorer = lad.Rung()
	res.FactorNNZ, res.FactorFlops, res.FillRatio = st.nnz, st.flops, st.fill
	res.CondEst = lad.CondEstimate(nb)
	return res, nil
}

// unionScalarPattern returns the union sparsity pattern of every term's
// node matrix.
func unionScalarPattern(sys *System) *sparse.Matrix {
	var u *sparse.Matrix
	add := func(a *sparse.Matrix) {
		if u == nil {
			u = a
			return
		}
		u = sparse.Add(1, u, 1, a)
	}
	for _, t := range sys.GTerms {
		add(t.A)
	}
	for _, t := range sys.CTerms {
		add(t.A)
	}
	return u
}
