package galerkin

import (
	"math"
	"testing"

	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/pce"
	"opera/internal/quad"
	"opera/internal/transient"
)

// regionedGrid builds the 3x3 test grid with every element tagged into
// a 2x2 region map (region = quadrant).
func regionedGrid() *netlist.Netlist {
	nl := smallGrid()
	regionOf := func(node int) int {
		r, c := node/3, node%3
		ri, ci := 0, 0
		if r >= 2 {
			ri = 1
		}
		if c >= 2 {
			ci = 1
		}
		return ri*2 + ci
	}
	for i := range nl.Resistors {
		nl.Resistors[i].Region = regionOf(nl.Resistors[i].A)
	}
	for i := range nl.Caps {
		nl.Caps[i].Region = regionOf(nl.Caps[i].A)
	}
	for i := range nl.Sources {
		nl.Sources[i].Region = regionOf(nl.Sources[i].A)
	}
	return nl
}

func TestSpatialPerfectCorrelationEqualsInterDie(t *testing.T) {
	// CorrLength → ∞ makes all regions move together: one principal
	// component with weight 1 everywhere — the inter-die model. Compare
	// against the combined two-variable system with matching
	// sensitivities.
	nl := regionedGrid()
	// Both models multiply the capacitor's GateFrac at stamping, so
	// the same KCL value means the same ∂C/∂ξ.
	spec := mna.SpatialSpec{
		RegionsPerAxis: 2,
		KG:             0.25 / 3,
		KCL:            0.2 / 3,
		KIL:            0.2 / 3,
		CorrLength:     1e9,
		EnergyCutoff:   0.999999,
	}
	ssys, err := mna.BuildSpatial(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ssys.DimsG != 1 || ssys.DimsL != 1 {
		t.Fatalf("perfect correlation should keep 1 PC per field, got %d/%d", ssys.DimsG, ssys.DimsL)
	}
	// Equivalent inter-die model. The spatial model treats pads as
	// deterministic package metal, so the reference uses off-die pads.
	nl2 := regionedGrid()
	for i := range nl2.Pads {
		nl2.Pads[i].OnDie = false
	}
	sys2, err := mna.Build(nl2, mna.VariationSpec{KG: spec.KG, KCL: spec.KCL, KIL: spec.KIL})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 15}
	basis := pce.NewHermiteBasis(2, 2)
	gs, err := FromSpatial(ssys, basis)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := opts.Steps + 1
	meanS := alloc2(nsteps, ssys.N)
	varS := alloc2(nsteps, ssys.N)
	if _, err := Solve(gs, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < ssys.N; i++ {
			meanS[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			varS[step][i] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	mean2, var2, _ := runGalerkin(t, sys2, 2, opts)
	for s := 0; s <= opts.Steps; s++ {
		for i := 0; i < ssys.N; i++ {
			if d := math.Abs(meanS[s][i] - mean2[s][i]); d > 1e-9 {
				t.Fatalf("spatial/inter-die mean mismatch at step %d node %d: %g", s, i, d)
			}
			if d := math.Abs(varS[s][i] - var2[s][i]); d > 1e-11 {
				t.Fatalf("spatial/inter-die variance mismatch at step %d node %d: %g vs %g",
					s, i, varS[s][i], var2[s][i])
			}
		}
	}
}

func TestSpatialIndependentRegionsReduceVariance(t *testing.T) {
	// With independent regions (L = 0) the per-node σ must be no larger
	// than under perfect correlation: spatial averaging cancels part of
	// the fluctuation.
	nl := regionedGrid()
	base := mna.SpatialSpec{
		RegionsPerAxis: 2,
		KG:             0.25 / 3, KCL: 0.08 / 3, KIL: 0.2 / 3,
		EnergyCutoff: 0.999999,
	}
	runVar := func(corr float64) []float64 {
		spec := base
		spec.CorrLength = corr
		ssys, err := mna.BuildSpatial(nl, spec)
		if err != nil {
			t.Fatal(err)
		}
		basis := pce.NewHermiteBasis(ssys.Dims, 2)
		gs, err := FromSpatial(ssys, basis)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Step: tStep, Steps: 12}
		out := make([]float64, ssys.N)
		if _, err := Solve(gs, opts, func(step int, _ float64, coeffs [][]float64) {
			if step != opts.Steps {
				return
			}
			for i := 0; i < ssys.N; i++ {
				v := 0.0
				for m := 1; m < basis.Size(); m++ {
					v += coeffs[m][i] * coeffs[m][i]
				}
				out[i] = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	indep := runVar(0)
	corr := runVar(1e9)
	totI, totC := 0.0, 0.0
	for i := range indep {
		totI += indep[i]
		totC += corr[i]
	}
	t.Logf("total variance: independent %.4g, correlated %.4g", totI, totC)
	if totI >= totC {
		t.Errorf("independent-region variance %g should be below correlated %g", totI, totC)
	}
}

// TestSpatialGalerkinMatchesQuadrature validates the spatial solve
// against a tensor-quadrature reference over the principal variables on
// the small grid (independent regions, truncated to few dims).
func TestSpatialGalerkinMatchesQuadrature(t *testing.T) {
	nl := regionedGrid()
	spec := mna.SpatialSpec{
		RegionsPerAxis: 2,
		KG:             0.25 / 3, KCL: 0.08 / 3, KIL: 0.2 / 3,
		CorrLength: 1.0,
		MaxDims:    2, // keep the quadrature tensor small: 2+2 dims
	}
	ssys, err := mna.BuildSpatial(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ssys.Dims != 4 {
		t.Fatalf("expected 4 truncated dims, got %d", ssys.Dims)
	}
	basis := pce.NewHermiteBasis(ssys.Dims, 2)
	gs, err := FromSpatial(ssys, basis)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	nsteps := opts.Steps + 1
	mean := alloc2(nsteps, ssys.N)
	variance := alloc2(nsteps, ssys.N)
	if _, err := Solve(gs, opts, func(step int, _ float64, coeffs [][]float64) {
		for i := 0; i < ssys.N; i++ {
			mean[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			variance[step][i] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Quadrature reference over 4 dims with 4 points each (256 runs of
	// a 9-node system).
	rule, err := quad.GaussHermite(4)
	if err != nil {
		t.Fatal(err)
	}
	refMean := alloc2(nsteps, ssys.N)
	refM2 := alloc2(nsteps, ssys.N)
	z := make([]float64, 4)
	var rec func(d int, w float64)
	rec = func(d int, w float64) {
		if d == 4 {
			g, c, rhs := ssys.Realize(z)
			err := transient.Run(g, c, rhs,
				transient.Options{Step: tStep, Steps: opts.Steps, Method: transient.BackwardEuler},
				func(step int, _ float64, x []float64) {
					for i, xi := range x {
						refMean[step][i] += w * xi
						refM2[step][i] += w * xi * xi
					}
				})
			if err != nil {
				t.Fatal(err)
			}
			return
		}
		for q, x := range rule.Nodes {
			z[d] = x
			rec(d+1, w*rule.Weights[q])
		}
	}
	rec(0, 1)
	for s := 0; s <= opts.Steps; s++ {
		for i := 0; i < ssys.N; i++ {
			if d := math.Abs(mean[s][i] - refMean[s][i]); d > 3e-5 {
				t.Fatalf("spatial mean vs quadrature at step %d node %d: %g", s, i, d)
			}
			refVar := refM2[s][i] - refMean[s][i]*refMean[s][i]
			if refVar > 1e-12 {
				if rel := math.Abs(variance[s][i]-refVar) / refVar; rel > 0.06 {
					t.Fatalf("spatial variance vs quadrature at step %d node %d: rel %g", s, i, rel)
				}
			}
		}
	}
}
