package galerkin

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"opera/internal/cancel"
	"opera/internal/mna"
	"opera/internal/pce"
)

// cancelTestSystem builds the Galerkin lift of the small test grid;
// rhsOnly strips the operator variation (no on-die metal or gate-cap
// sensitivity) so the decoupled Eq. 27 path is selected.
func cancelTestSystem(t *testing.T, rhsOnly bool) *System {
	t.Helper()
	nl := smallGrid()
	if rhsOnly {
		for i := range nl.Resistors {
			nl.Resistors[i].OnDie = false
		}
		for i := range nl.Pads {
			nl.Pads[i].OnDie = false
		}
		for i := range nl.Caps {
			nl.Caps[i].GateFrac = 0
		}
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	gsys, err := FromMNA(sys, pce.NewHermiteBasis(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	return gsys
}

// TestSolveCancelAllPaths cancels each of the three solve paths from
// inside the visit callback and checks every one stops within a step
// with the structured error, leaks no worker goroutines, and leaves
// the system solvable again (factors and the numguard ladder are not
// poisoned by the abort).
func TestSolveCancelAllPaths(t *testing.T) {
	cases := []struct {
		name    string
		stage   string
		rhsOnly bool
		opts    Options
	}{
		{"decoupled", "galerkin.decoupled", true, Options{}},
		{"coupled", "galerkin.coupled", false, Options{ForceCoupled: true}},
		{"iterative", "galerkin.iterative", false, Options{ForceCoupled: true, Iterative: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gsys := cancelTestSystem(t, tc.rhsOnly)
			base := runtime.NumGoroutine()
			ctx, stop := context.WithCancel(context.Background())
			defer stop()
			opts := tc.opts
			opts.Step, opts.Steps, opts.Ctx, opts.Workers = tStep, 200, ctx, 4
			last := -1
			_, err := Solve(gsys, opts, func(step int, _ float64, _ [][]float64) {
				last = step
				if step == 2 {
					stop()
				}
			})
			if !errors.Is(err, cancel.ErrCanceled) {
				t.Fatalf("want error wrapping cancel.ErrCanceled, got %v", err)
			}
			var ce *cancel.Error
			if !errors.As(err, &ce) || ce.Stage != tc.stage {
				t.Errorf("want *cancel.Error with stage %s, got %v", tc.stage, err)
			}
			if last > 3 {
				t.Errorf("solve continued to step %d after cancel at step 2", last)
			}
			waitForGoroutines(t, base)

			// The same system must solve cleanly afterwards: the abort
			// left no half-updated state behind.
			opts.Ctx = nil
			opts.Steps = 5
			res, err := Solve(gsys, opts, nil)
			if err != nil {
				t.Fatalf("rerun after cancel: %v", err)
			}
			if g := res.Guard(); g != nil && !g.Healthy() {
				t.Errorf("rerun ladder unhealthy after cancel: %s", g.Summary())
			}
		})
	}
}

// TestSolveCancelBeforeStart fails fast under a dead context, before
// any factorization work.
func TestSolveCancelBeforeStart(t *testing.T) {
	gsys := cancelTestSystem(t, false)
	ctx, stop := context.WithCancel(context.Background())
	stop()
	_, err := Solve(gsys, Options{Step: tStep, Steps: 5, Ctx: ctx}, nil)
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), base)
}
