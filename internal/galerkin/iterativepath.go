package galerkin

import (
	"fmt"

	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/sparse"
)

// solveCoupledIterative is the paper's §5.2 alternative: instead of
// factoring the (N+1)·n augmented companion, keep only one *scalar*
// factorization of the mean companion G₀ + C₀/h and solve each time
// step by conjugate gradients on the block system, preconditioned by
// I_{N+1} ⊗ (G₀ + C₀/h)⁻¹ — the "iterative block solver with an
// appropriate pre-conditioner". The preconditioned spectrum clusters
// around 1 (the coupling terms carry the small variation
// sensitivities), so a handful of iterations per step suffices. Memory
// drops from O((N+1)²·nnz(L)) to O(nnz(L)); the trade is CG matvecs per
// step.
func solveCoupledIterative(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	n, b := sys.N, sys.Basis.Size()
	pattern := unionScalarPattern(sys)
	perm := permFor(pattern, opts.Ordering)

	comp := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		comp.AddTerm(t.Coupling, t.A)
	}
	var cBM *factor.BlockMatrix
	if len(sys.CTerms) > 0 {
		cBM = factor.NewBlockMatrix(pattern, b)
		for _, t := range sys.CTerms {
			cBM.AddTerm(t.Coupling, t.A)
			comp.AddTerm(t.Coupling.Clone().Scale(1/opts.Step), t.A)
		}
	}
	gBM := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		gBM.AddTerm(t.Coupling, t.A)
	}

	// Mean (identity-coupling) scalar matrices.
	g0 := meanTermSum(sys.GTerms, n)
	c0 := meanTermSum(sys.CTerms, n)
	scalarComp := sparse.Add(1, g0, 1/opts.Step, c0)
	compFac, err := factor.Cholesky(scalarComp, perm)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: iterative path mean factorization: %w", err)
	}
	g0Fac, err := factor.Cholesky(g0, perm)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: iterative path DC factorization: %w", err)
	}
	res := Result{Factorer: "cg+mean-precond", AugmentedN: n * b, FactorNNZ: compFac.Sym.LNNZ()}

	// Block-diagonal preconditioner: apply the scalar factor to each
	// chaos coefficient's sub-vector.
	zc := make([]float64, n)
	makePre := func(f *factor.CholFactor) iterative.Preconditioner {
		return iterative.PrecondFunc(func(z, r []float64) {
			for m := 0; m < b; m++ {
				for i := 0; i < n; i++ {
					zc[i] = r[i*b+m]
				}
				f.SolveTo(zc, zc)
				for i := 0; i < n; i++ {
					z[i*b+m] = zc[i]
				}
			}
		})
	}
	preComp := makePre(compFac)
	preG := makePre(g0Fac)

	nb := n * b
	x := make([]float64, nb)
	rhs := make([]float64, nb)
	work := make([]float64, nb)
	rhsBlocks := make([][]float64, b)
	outBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		rhsBlocks[m] = make([]float64, n)
		outBlocks[m] = make([]float64, n)
	}
	pack := func(blocks [][]float64, dst []float64) {
		for m := 0; m < b; m++ {
			src := blocks[m]
			for i := 0; i < n; i++ {
				dst[i*b+m] = src[i]
			}
		}
	}
	unpack := func(src []float64, blocks [][]float64) {
		for m := 0; m < b; m++ {
			dst := blocks[m]
			for i := 0; i < n; i++ {
				dst[i] = src[i*b+m]
			}
		}
	}

	sys.RHS(0, rhsBlocks)
	pack(rhsBlocks, rhs)
	cgOpts := iterative.CGOptions{Tol: 1e-11, MaxIter: 1000}
	cgOpts.M = preG
	r0, err := iterative.CG(gBM, x, rhs, cgOpts)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: iterative DC solve: %w", err)
	}
	res.CGIterations += r0.Iterations
	if visit != nil {
		unpack(x, outBlocks)
		visit(0, 0, outBlocks)
	}
	cgOpts.M = preComp
	for k := 1; k <= opts.Steps; k++ {
		t := float64(k) * opts.Step
		sys.RHS(t, rhsBlocks)
		pack(rhsBlocks, rhs)
		if cBM != nil {
			cBM.MulVec(work, x)
			for i := range rhs {
				rhs[i] += work[i] / opts.Step
			}
		}
		// Warm start from the previous step's solution.
		rk, err := iterative.CG(comp, x, rhs, cgOpts)
		if err != nil {
			return Result{}, fmt.Errorf("galerkin: iterative step %d: %w", k, err)
		}
		res.CGIterations += rk.Iterations
		if visit != nil {
			unpack(x, outBlocks)
			visit(k, t, outBlocks)
		}
		res.StepsRun = k
	}
	return res, nil
}

// meanTermSum adds the node matrices of terms whose coupling is the
// identity (the ξ-free mean part of the operator).
func meanTermSum(ts []Term, n int) *sparse.Matrix {
	acc := sparse.NewMatrix(n, n)
	for _, t := range ts {
		if isIdentity(t.Coupling) {
			acc = sparse.Add(1, acc, 1, t.A)
		}
	}
	return acc
}

// isIdentity reports whether m is exactly the identity matrix.
func isIdentity(m *sparse.Matrix) bool {
	if m.Rows != m.Cols || m.NNZ() != m.Rows {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		if m.Colp[j+1] != j+1 || m.Rowi[j] != j || m.Val[j] != 1 {
			return false
		}
	}
	return true
}
