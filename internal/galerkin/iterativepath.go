package galerkin

import (
	"fmt"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/numguard"
	"opera/internal/numguard/inject"
	"opera/internal/obs"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// solveCoupledIterative is the paper's §5.2 alternative: instead of
// factoring the (N+1)·n augmented companion, keep only one *scalar*
// factorization of the mean companion G₀ + C₀/h and solve each time
// step by conjugate gradients on the block system, preconditioned by
// I_{N+1} ⊗ (G₀ + C₀/h)⁻¹ — the "iterative block solver with an
// appropriate pre-conditioner". The preconditioned spectrum clusters
// around 1 (the coupling terms carry the small variation
// sensitivities), so a handful of iterations per step suffices. Memory
// drops from O((N+1)²·nnz(L)) to O(nnz(L)); the trade is CG matvecs per
// step.
func solveCoupledIterative(sys *System, opts Options, visit func(int, float64, [][]float64)) (Result, error) {
	tr := opts.Obs
	n, b := sys.N, sys.Basis.Size()
	spO := tr.Start("order", obs.String("ordering", opts.Ordering.String()), obs.Int("n", n))
	pattern := unionScalarPattern(sys)
	perm := permFor(pattern, opts.Ordering)
	spO.End()

	spF := tr.Start("factor")
	spAsm := tr.Start("galerkin.assemble", obs.Int("n", n), obs.Int("basis", b))
	comp := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		comp.AddTerm(t.Coupling, t.A)
	}
	var cBM *factor.BlockMatrix
	if len(sys.CTerms) > 0 {
		cBM = factor.NewBlockMatrix(pattern, b)
		for _, t := range sys.CTerms {
			cBM.AddTerm(t.Coupling, t.A)
			comp.AddTerm(t.Coupling.Clone().Scale(1/opts.Step), t.A)
		}
	}
	gBM := factor.NewBlockMatrix(pattern, b)
	for _, t := range sys.GTerms {
		gBM.AddTerm(t.Coupling, t.A)
	}

	// Mean (identity-coupling) scalar matrices. The preconditioner
	// factors go through mini-ladders of their own: a mean companion
	// that defeats Cholesky falls back to LU rather than aborting.
	res := Result{Factorer: "cg+mean-precond", AugmentedN: n * b}
	rep := &numguard.Report{}
	rep.Bind(tr.Registry())
	res.guard = rep
	g0 := meanTermSum(sys.GTerms, n)
	c0 := meanTermSum(sys.CTerms, n)
	scalarComp := sparse.Add(1, g0, 1/opts.Step, c0)
	spAsm.End()
	st := &factorStats{}
	compLad := numguard.NewLadder("precond", opts.Guard, scalarComp, scalarComp.NormInf(),
		scalarRungs(scalarComp, perm, opts.Kernel, opts.Workers, opts.Guard, false, st), rep)
	compFac, err := compLad.Solver(0)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: iterative path mean factorization: %w", err)
	}
	g0Lad := numguard.NewLadder("precond-dc", opts.Guard, g0, g0.NormInf(),
		scalarRungs(g0, perm, opts.Kernel, opts.Workers, opts.Guard, false, nil), rep)
	g0Fac, err := g0Lad.Solver(0)
	if err != nil {
		return Result{}, fmt.Errorf("galerkin: iterative path DC factorization: %w", err)
	}
	res.FactorNNZ, res.FactorFlops, res.FillRatio = st.nnz, st.flops, st.fill
	spF.SetAttrs(obs.String("rung", compLad.Rung()), obs.Int("factor_nnz", res.FactorNNZ))
	spF.End()

	// Block-diagonal preconditioner: apply the scalar factor to each
	// chaos coefficient's sub-vector.
	zc := make([]float64, n)
	makePre := func(f numguard.Solver) iterative.Preconditioner {
		return iterative.PrecondFunc(func(z, r []float64) {
			for m := 0; m < b; m++ {
				for i := 0; i < n; i++ {
					zc[i] = r[i*b+m]
				}
				f.SolveTo(zc, zc)
				for i := 0; i < n; i++ {
					z[i*b+m] = zc[i]
				}
			}
		})
	}
	preComp := makePre(compFac)
	preG := makePre(g0Fac)

	nb := n * b
	x := make([]float64, nb)
	rhs := make([]float64, nb)
	work := make([]float64, nb)
	rhsBlocks := make([][]float64, b)
	outBlocks := make([][]float64, b)
	for m := 0; m < b; m++ {
		rhsBlocks[m] = make([]float64, n)
		outBlocks[m] = make([]float64, n)
	}
	pack := func(blocks [][]float64, dst []float64) {
		for m := 0; m < b; m++ {
			src := blocks[m]
			for i := 0; i < n; i++ {
				dst[i*b+m] = src[i]
			}
		}
	}
	unpack := func(src []float64, blocks [][]float64) {
		for m := 0; m < b; m++ {
			dst := blocks[m]
			for i := 0; i < n; i++ {
				dst[i] = src[i*b+m]
			}
		}
	}

	spT := tr.Start("transient", obs.Int("steps", opts.Steps))
	spT.MarkAllocsApprox() // parallel block apply runs on worker goroutines
	defer spT.End()
	workers := parallel.Workers(opts.Workers)
	reg := tr.Registry()
	reg.Gauge("parallel.workers").Set(float64(workers))
	stepMS := reg.Histogram("galerkin.step_ms", obs.MSBuckets)
	stepsTotal := reg.Counter("galerkin.steps_total")
	cgIters := reg.Counter("galerkin.cg_iterations_total")

	// On CG breakdown or a poisoned state the path escalates to the
	// direct block ladder (block-cholesky → cholesky → lu → cg+ic0) and
	// re-solves the failing step there — correctness over the memory
	// economy that motivated the iterative path.
	var direct *numguard.Ladder
	escalate := func(step int, op *factor.BlockMatrix, cause error) error {
		if cause == nil {
			rep.NonFinite()
		}
		reason := "non-finite solution"
		if cause != nil {
			reason = cause.Error()
		}
		rep.AddTransition(numguard.Transition{
			Stage: "step", Step: step, From: "cg+mean-precond", To: "block-cholesky", Reason: reason,
		})
		if step > 0 {
			rep.AddStepRetry()
		}
		if direct == nil {
			direct = numguard.NewLadder("step", opts.Guard, comp, comp.NormInf(),
				blockRungs(comp, perm, opts.Kernel, opts.Workers, opts.Guard, false, nil), rep)
		}
		if op == comp {
			return direct.Solve(step, x, rhs)
		}
		dcLad := numguard.NewLadder("dc", opts.Guard, op, op.NormInf(),
			blockRungs(op, perm, opts.Kernel, opts.Workers, opts.Guard, false, nil), rep)
		return dcLad.Solve(step, x, rhs)
	}

	sys.RHS(0, rhsBlocks)
	pack(rhsBlocks, rhs)
	cgOpts := iterative.CGOptions{Tol: 1e-11, MaxIter: 1000}
	cgOpts.M = preG
	r0, cgErr := iterative.CG(gBM, x, rhs, cgOpts)
	inject.CorruptSolve("cg+mean-precond", 0, x)
	if cgErr != nil || !numguard.Finite(x) {
		if e := escalate(0, gBM, cgErr); e != nil {
			return Result{}, fmt.Errorf("galerkin: iterative DC solve: %w", e)
		}
	} else {
		cgIters.Add(int64(r0.Iterations))
		// CG is residual-controlled (‖b−Ax‖₂/‖b‖₂ ≤ tol).
		rep.Accept(r0.Residual)
	}
	if visit != nil {
		unpack(x, outBlocks)
		visit(0, 0, outBlocks)
	}
	cgOpts.M = preComp
	for k := 1; k <= opts.Steps; k++ {
		if err := cancel.Poll(opts.Ctx, "galerkin.iterative", k); err != nil {
			return Result{}, err
		}
		t := float64(k) * opts.Step
		stepStart := time.Now()
		sys.RHS(t, rhsBlocks)
		pack(rhsBlocks, rhs)
		if cBM != nil {
			// Gather-form apply at every worker count (including 1), so
			// the trajectory never depends on Workers.
			cBM.MulVecSym(work, x, workers)
			for i := range rhs {
				rhs[i] += work[i] / opts.Step
			}
		}
		if direct != nil {
			// Already escalated: stay on the verified direct ladder.
			if err := direct.Solve(k, x, rhs); err != nil {
				return Result{}, fmt.Errorf("galerkin: iterative step %d: %w", k, err)
			}
		} else {
			// Warm start from the previous step's solution.
			rk, cgErr := iterative.CG(comp, x, rhs, cgOpts)
			inject.CorruptSolve("cg+mean-precond", k, x)
			if cgErr != nil || !numguard.Finite(x) {
				if e := escalate(k, comp, cgErr); e != nil {
					return Result{}, fmt.Errorf("galerkin: iterative step %d: %w", k, e)
				}
			} else {
				cgIters.Add(int64(rk.Iterations))
				rep.Accept(rk.Residual)
			}
		}
		stepMS.ObserveSince(stepStart)
		stepsTotal.Inc()
		opts.Progress.Mark()
		if visit != nil {
			unpack(x, outBlocks)
			visit(k, t, outBlocks)
		}
		res.StepsRun = k
	}
	if direct != nil {
		res.Factorer = "cg+mean-precond→" + direct.Rung()
		res.CondEst = direct.CondEstimate(nb)
	} else {
		// The mean-companion preconditioner is the operator CG ran
		// against; its κ₁ is the meaningful per-job conditioning signal.
		res.CondEst = compLad.CondEstimate(n)
	}
	return res, nil
}

// meanTermSum adds the node matrices of terms whose coupling is the
// identity (the ξ-free mean part of the operator).
func meanTermSum(ts []Term, n int) *sparse.Matrix {
	acc := sparse.NewMatrix(n, n)
	for _, t := range ts {
		if isIdentity(t.Coupling) {
			acc = sparse.Add(1, acc, 1, t.A)
		}
	}
	return acc
}

// isIdentity reports whether m is exactly the identity matrix.
func isIdentity(m *sparse.Matrix) bool {
	if m.Rows != m.Cols || m.NNZ() != m.Rows {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		if m.Colp[j+1] != j+1 || m.Rowi[j] != j || m.Val[j] != 1 {
			return false
		}
	}
	return true
}
