package galerkin

import (
	"testing"

	"opera/internal/mna"
	"opera/internal/pce"
	"opera/internal/sparse"
)

// TestSumTermsSingleTermNoAlias is the regression test for the aliasing
// bug where a single-term list returned the term's own matrix: mutating
// the sum then silently corrupted the system definition.
func TestSumTermsSingleTermNoAlias(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 4)
	tr.Add(0, 0, 2)
	tr.Add(1, 1, 3)
	tr.Add(0, 1, -1)
	tr.Add(1, 0, -1)
	a := tr.Compile()
	before := append([]float64(nil), a.Val...)

	sum := sumTerms([]Term{{A: a}}, 2)
	if sum == a {
		t.Fatal("sumTerms returned the term's own matrix")
	}
	for i := range sum.Val {
		sum.Val[i] *= 100
	}
	for i, v := range a.Val {
		if v != before[i] {
			t.Fatalf("term matrix mutated through the sum: Val[%d] = %g, want %g", i, v, before[i])
		}
	}

	// Empty and multi-term lists must also hand back private storage.
	if z := sumTerms(nil, 2); z.NNZ() != 0 || z.Rows != 2 {
		t.Errorf("empty sum: %dx%d with %d nnz", z.Rows, z.Cols, z.NNZ())
	}
	two := sumTerms([]Term{{A: a}, {A: a}}, 2)
	if two == a {
		t.Fatal("two-term sum aliases the input")
	}
}

// rhsOnlySystem builds a grid whose variations enter only the RHS, so
// Solve takes the §5.1 decoupled path.
func rhsOnlySystem(t *testing.T, order int) *System {
	t.Helper()
	nl := smallGrid()
	for i := range nl.Resistors {
		nl.Resistors[i].OnDie = false
	}
	for i := range nl.Pads {
		nl.Pads[i].OnDie = false
	}
	for i := range nl.Caps {
		nl.Caps[i].GateFrac = 0
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	gsys, err := FromMNA(sys, pce.NewHermiteBasis(2, order))
	if err != nil {
		t.Fatal(err)
	}
	if !gsys.RHSOnly() {
		t.Fatal("system should be RHS-only")
	}
	return gsys
}

// collectCoeffs runs Solve and copies every step's coefficient blocks.
func collectCoeffs(t *testing.T, gsys *System, opts Options) (snaps [][][]float64, res Result) {
	t.Helper()
	snaps = make([][][]float64, opts.Steps+1)
	res, err := Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		cp := make([][]float64, len(coeffs))
		for m := range coeffs {
			cp[m] = append([]float64(nil), coeffs[m]...)
		}
		snaps[step] = cp
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps, res
}

func assertIdenticalCoeffs(t *testing.T, ref, got [][][]float64, workers int) {
	t.Helper()
	for s := range ref {
		for m := range ref[s] {
			for i := range ref[s][m] {
				if got[s][m][i] != ref[s][m][i] {
					t.Fatalf("workers=%d: coefficient differs at step %d basis %d node %d: %.17g vs %.17g",
						workers, s, m, i, got[s][m][i], ref[s][m][i])
				}
			}
		}
	}
}

// TestDecoupledParallelDeterminism checks the tentpole contract on the
// decoupled fast path: chaos coefficients are bit-identical for any
// worker count.
func TestDecoupledParallelDeterminism(t *testing.T) {
	gsys := rhsOnlySystem(t, 2)
	base := Options{Step: tStep, Steps: 12}
	var ref [][][]float64
	for _, w := range []int{1, 2, 4} {
		opts := base
		opts.Workers = w
		snaps, res := collectCoeffs(t, gsys, opts)
		if !res.Decoupled {
			t.Fatalf("workers=%d: decoupled path not taken", w)
		}
		if ref == nil {
			ref = snaps
			continue
		}
		assertIdenticalCoeffs(t, ref, snaps, w)
	}
}

// TestCoupledParallelDeterminism checks the same contract on the
// coupled path, whose parallel surface is the row-partitioned block
// apply C̃·x.
func TestCoupledParallelDeterminism(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	gsys, err := FromMNA(sys, pce.NewHermiteBasis(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Step: tStep, Steps: 10, ForceCoupled: true}
	var ref [][][]float64
	for _, w := range []int{1, 2, 4} {
		opts := base
		opts.Workers = w
		snaps, res := collectCoeffs(t, gsys, opts)
		if res.Decoupled {
			t.Fatalf("workers=%d: expected the coupled path", w)
		}
		if ref == nil {
			ref = snaps
			continue
		}
		assertIdenticalCoeffs(t, ref, snaps, w)
	}
}

// TestSolveRespectsWorkersOption smoke-tests that an absurd worker
// count is clamped and still solves correctly.
func TestSolveRespectsWorkersOption(t *testing.T) {
	gsys := rhsOnlySystem(t, 1)
	opts := Options{Step: tStep, Steps: 5, Workers: 1000}
	if _, err := Solve(gsys, opts, nil); err != nil {
		t.Fatal(err)
	}
}
