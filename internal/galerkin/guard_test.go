package galerkin

import (
	"errors"
	"math"
	"strings"
	"testing"

	"opera/internal/mna"
	"opera/internal/numguard"
	"opera/internal/numguard/inject"
	"opera/internal/pce"
)

// The tests in this file drive the numguard escalation ladder through
// every transition deterministically, via the fault-injection hooks:
// refinement recovery, Cholesky→LU escalation, mid-transient NaN step
// retry, and full-ladder exhaustion. Each asserts the hard invariant
// that no injected fault ever yields NaN/Inf chaos coefficients
// without an accompanying error.

// guardedRun runs the Galerkin solve while asserting that every block
// of coefficients delivered to the visitor is finite.
func guardedRun(t *testing.T, sys *mna.System, order int, opts Options) (mean, variance [][]float64, res Result) {
	t.Helper()
	basis := pce.NewHermiteBasis(2, order)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}
	nsteps := opts.Steps + 1
	mean = alloc2(nsteps, sys.N)
	variance = alloc2(nsteps, sys.N)
	res, err = Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
		if !numguard.FiniteBlocks(coeffs) {
			t.Fatalf("step %d: non-finite coefficients delivered to visitor", step)
		}
		for i := 0; i < sys.N; i++ {
			mean[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < basis.Size(); m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			variance[step][i] = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return mean, variance, res
}

func maxAbsDiff(a, b [][]float64) float64 {
	worst := 0.0
	for s := range a {
		for i := range a[s] {
			if d := math.Abs(a[s][i] - b[s][i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestInjectDriftRecoveredByRefinement(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Verify every step: a consistent drift on unverified steps would
	// otherwise pass through on the default cadence by design.
	opts := Options{Step: tStep, Steps: 10, Guard: numguard.Config{VerifyEvery: 1}}
	refMean, refVar, _ := guardedRun(t, sys, 2, opts)

	restore := inject.Enable(&inject.Faults{
		SolveDrift: map[string]float64{"block-cholesky": 1e-3},
	})
	t.Cleanup(restore)
	mean, variance, res := guardedRun(t, sys, 2, opts)

	// A 1e-3 consistent drift is far above the 1e-8 residual tolerance
	// but well within refinement reach (the error contracts by ~1e-3 per
	// sweep), so the run must stay on the first rung and refine.
	if res.Factorer != "block-cholesky" {
		t.Errorf("drift must not escalate, got factorer %q", res.Factorer)
	}
	rep := res.Guard()
	if rep == nil || rep.Refinements == 0 || rep.RefinedSolves == 0 {
		t.Fatalf("refinement not engaged: %+v", rep)
	}
	if len(rep.Transitions) != 0 {
		t.Errorf("unexpected transitions: %+v", rep.Transitions)
	}
	if d := maxAbsDiff(mean, refMean); d > 1e-6 {
		t.Errorf("refined means off by %g", d)
	}
	if d := maxAbsDiff(variance, refVar); d > 1e-8 {
		t.Errorf("refined variances off by %g", d)
	}
}

func TestInjectCholeskyBreakdownEscalatesToLU(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	refMean, _, _ := guardedRun(t, sys, 2, opts)

	restore := inject.Enable(&inject.Faults{
		FailPrepare: map[string]int{"block-cholesky": -1, "supernodal": -1, "cholesky": -1},
	})
	t.Cleanup(restore)
	mean, _, res := guardedRun(t, sys, 2, opts)

	if res.Factorer != "lu" {
		t.Errorf("factorer %q, want lu", res.Factorer)
	}
	rep := res.Guard()
	if rep == nil || len(rep.Transitions) < 3 {
		t.Fatalf("expected block-cholesky→supernodal→cholesky→lu transitions, got %+v", rep)
	}
	if rep.Transitions[0].From != "block-cholesky" || rep.Transitions[1].From != "supernodal" || rep.Transitions[2].From != "cholesky" {
		t.Errorf("transition order wrong: %+v", rep.Transitions)
	}
	if d := maxAbsDiff(mean, refMean); d > 1e-8 {
		t.Errorf("LU-rung means off by %g", d)
	}
}

func TestInjectNaNMidTransientRetriesStep(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	refMean, _, _ := guardedRun(t, sys, 2, opts)

	restore := inject.Enable(&inject.Faults{
		SolveNaN: map[int]string{5: "block-cholesky"},
	})
	t.Cleanup(restore)
	mean, _, res := guardedRun(t, sys, 2, opts)

	rep := res.Guard()
	if rep == nil || rep.NaNEvents != 1 {
		t.Fatalf("NaN event not recorded: %+v", rep)
	}
	if rep.StepRetries < 1 {
		t.Errorf("step 5 was not retried: %+v", rep)
	}
	found := false
	for _, tr := range rep.Transitions {
		if tr.Step == 5 && tr.From == "block-cholesky" && tr.To == "supernodal" {
			found = true
		}
	}
	if !found {
		t.Errorf("no block-cholesky→supernodal transition at step 5: %+v", rep.Transitions)
	}
	// The retried step (and all later ones, now on the supernodal
	// rung) must still carry the correct verified solution.
	if d := maxAbsDiff(mean, refMean); d > 1e-8 {
		t.Errorf("post-retry means off by %g", d)
	}
}

func TestInjectExhaustedLadderReturnsDiagnosis(t *testing.T) {
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}

	restore := inject.Enable(&inject.Faults{
		FailPrepare: map[string]int{"": -1},
	})
	t.Cleanup(restore)
	_, err = Solve(gsys, Options{Step: tStep, Steps: 5}, func(step int, _ float64, coeffs [][]float64) {
		if !numguard.FiniteBlocks(coeffs) {
			t.Fatalf("step %d: non-finite coefficients delivered despite exhaustion", step)
		}
	})
	if err == nil {
		t.Fatal("exhausted ladder returned nil error")
	}
	var d *numguard.Diagnosis
	if !errors.As(err, &d) {
		t.Fatalf("error %T (%v) does not wrap *numguard.Diagnosis", err, err)
	}
}

func TestInjectNaNNeverEscapesWithoutError(t *testing.T) {
	// Poison a mid-transient solve AND break every higher rung: the run
	// cannot recover, so Solve must fail with a Diagnosis at that step —
	// never deliver poisoned coefficients as success.
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	basis := pce.NewHermiteBasis(2, 2)
	gsys, err := FromMNA(sys, basis)
	if err != nil {
		t.Fatal(err)
	}

	restore := inject.Enable(&inject.Faults{
		SolveNaN:    map[int]string{3: ""},
		FailPrepare: map[string]int{"supernodal": -1, "cholesky": -1, "lu": -1, "cg+ic0": -1},
	})
	t.Cleanup(restore)
	_, err = Solve(gsys, Options{Step: tStep, Steps: 10}, func(step int, _ float64, coeffs [][]float64) {
		if !numguard.FiniteBlocks(coeffs) {
			t.Fatalf("step %d: non-finite coefficients escaped without error", step)
		}
		if step >= 3 {
			t.Fatalf("step %d delivered after the unrecoverable fault at step 3", step)
		}
	})
	if err == nil {
		t.Fatal("unrecoverable NaN returned nil error")
	}
	var d *numguard.Diagnosis
	if !errors.As(err, &d) {
		t.Fatalf("error %T (%v) does not wrap *numguard.Diagnosis", err, err)
	}
	if d.Step != 3 {
		t.Errorf("diagnosis step %d, want 3", d.Step)
	}
}

func TestInjectDecoupledPathEscalates(t *testing.T) {
	// The §5.1 decoupled path runs scalar ladders; breaking Cholesky
	// everywhere must land both the companion and DC ladders on LU.
	nl := smallGrid()
	for i := range nl.Resistors {
		nl.Resistors[i].OnDie = false
	}
	for i := range nl.Pads {
		nl.Pads[i].OnDie = false
	}
	for i := range nl.Caps {
		nl.Caps[i].GateFrac = 0
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	refMean, _, refRes := guardedRun(t, sys, 1, opts)
	if !refRes.Decoupled {
		t.Fatal("reference run did not take the decoupled path")
	}

	restore := inject.Enable(&inject.Faults{
		FailPrepare: map[string]int{"supernodal": -1, "cholesky": -1},
	})
	t.Cleanup(restore)
	mean, _, res := guardedRun(t, sys, 1, opts)
	if !res.Decoupled {
		t.Fatal("faulted run did not take the decoupled path")
	}
	if res.Factorer != "lu" {
		t.Errorf("factorer %q, want lu", res.Factorer)
	}
	if d := maxAbsDiff(mean, refMean); d > 1e-8 {
		t.Errorf("decoupled LU means off by %g", d)
	}
}

func TestInjectIterativePathEscalatesToDirect(t *testing.T) {
	// A NaN injected into the §5.2 CG path mid-transient must hand the
	// step to the direct block ladder and keep the rest of the run there.
	sys, err := mna.Build(smallGrid(), mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Step: tStep, Steps: 10}
	refMean, _, _ := guardedRun(t, sys, 2, opts)

	restore := inject.Enable(&inject.Faults{
		SolveNaN: map[int]string{4: "cg+mean-precond"},
	})
	t.Cleanup(restore)
	itOpts := opts
	itOpts.Iterative = true
	mean, _, res := guardedRun(t, sys, 2, itOpts)

	if !strings.HasPrefix(res.Factorer, "cg+mean-precond→") {
		t.Errorf("factorer %q does not record the escalation", res.Factorer)
	}
	rep := res.Guard()
	if rep == nil || rep.NaNEvents != 1 || rep.StepRetries < 1 {
		t.Fatalf("escalation telemetry wrong: %+v", rep)
	}
	found := false
	for _, tr := range rep.Transitions {
		if tr.Step == 4 && tr.From == "cg+mean-precond" {
			found = true
		}
	}
	if !found {
		t.Errorf("no cg+mean-precond transition at step 4: %+v", rep.Transitions)
	}
	if d := maxAbsDiff(mean, refMean); d > 1e-7 {
		t.Errorf("escalated iterative means off by %g", d)
	}
}
