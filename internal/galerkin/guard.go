package galerkin

import (
	"fmt"

	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/numguard"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// This file wires the numguard escalation ladder into the Galerkin
// solve paths. Rung order (most economical first, per the numguard
// design): block Cholesky on the block-sparse companion → supernodal
// blocked Cholesky on the expanded CSC → scalar up-looking Cholesky →
// sparse LU with a pivot-growth acceptance check →
// IC(0)-preconditioned CG as the last resort. The supernodal rung is
// gated on Options.Kernel (KernelScalar drops it — the ablation
// switch). Every factorization is attempted lazily: a healthy run
// never expands the block matrix to CSC at all.

// expandPerm lifts a node permutation to node-major scalar indexing
// (global unknown i·B+m).
func expandPerm(perm []int, b int) []int {
	if perm == nil {
		return nil
	}
	out := make([]int, len(perm)*b)
	for k, p := range perm {
		for m := 0; m < b; m++ {
			out[k*b+m] = p*b + m
		}
	}
	return out
}

// factorStats receives the cost facts of the first successful direct
// factorization of a ladder: scalar nonzero count, symbolic flop
// estimate, and fill ratio nnz(L)/nnz(upper(A)). A later escalation
// overwrites them (the costlier factor is the one the solve ran on).
type factorStats struct {
	nnz   int
	flops int64
	fill  float64
}

func (st *factorStats) set(nnz int, flops int64, fill float64) {
	if st == nil {
		return
	}
	st.nnz = nnz
	st.flops = flops
	st.fill = fill
}

// scalarRungs builds the ladder rungs for a scalar (n×n) system
// matrix: supernodal → cholesky → lu (pivot-growth checked) → cg+ic0.
// kernel == KernelScalar drops the supernodal rung and forceLU drops
// both Cholesky rungs (ablation switches). workers caps the
// supernodal factorization's task pool — the factor is bit-identical
// for every value. st, when non-nil, receives the factor's cost facts
// on each successful direct factorization.
func scalarRungs(a *sparse.Matrix, perm []int, kernel factor.Kernel, workers int, cfg numguard.Config, forceLU bool, st *factorStats) []numguard.Rung {
	cfg = cfg.WithDefaults()
	var rungs []numguard.Rung
	if !forceLU {
		rungs = append(rungs, supernodalRung(a, perm, kernel, workers, st)...)
		rungs = append(rungs, numguard.Rung{Name: "cholesky", Prepare: func() (numguard.Solver, error) {
			f, err := factor.Cholesky(a, perm)
			if err != nil {
				return nil, err
			}
			st.set(f.Sym.LNNZ(), f.Sym.FlopEstimate(), f.Sym.FillRatio())
			return f, nil
		}})
	}
	rungs = append(rungs,
		luRung(func() (*sparse.Matrix, []int) { return a, perm }, cfg.PivotGrowthMax, st),
		cgRung(a, func() *sparse.Matrix { return a }),
	)
	return rungs
}

// supernodalRung builds the blocked-kernel rung, or nothing when the
// scalar kernel was forced.
func supernodalRung(a *sparse.Matrix, perm []int, kernel factor.Kernel, workers int, st *factorStats) []numguard.Rung {
	if kernel == factor.KernelScalar {
		return nil
	}
	return []numguard.Rung{{Name: "supernodal", Prepare: func() (numguard.Solver, error) {
		sym := factor.CholAnalyzeSupernodal(a, perm, -1)
		sym.Workers = parallel.Workers(workers)
		f, err := sym.Refactorize(a, nil)
		if err != nil {
			return nil, err
		}
		st.set(sym.LNNZ(), sym.FlopEstimate(), sym.FillRatio())
		return f, nil
	}}}
}

// blockRungs builds the ladder rungs for a block companion matrix. The
// CSC expansion and the expanded permutation are computed at most once,
// shared by the scalar rungs.
func blockRungs(m *factor.BlockMatrix, perm []int, kernel factor.Kernel, workers int, cfg numguard.Config, forceLU bool, st *factorStats) []numguard.Rung {
	cfg = cfg.WithDefaults()
	var csc *sparse.Matrix
	var scalPerm []int
	expand := func() (*sparse.Matrix, []int) {
		if csc == nil {
			csc = m.ToCSC()
			scalPerm = expandPerm(perm, m.B)
		}
		return csc, scalPerm
	}
	var rungs []numguard.Rung
	if !forceLU {
		rungs = append(rungs,
			numguard.Rung{Name: "block-cholesky", Prepare: func() (numguard.Solver, error) {
				f, err := factor.BlockCholesky(m, perm)
				if err != nil {
					return nil, err
				}
				st.set(f.NNZ(), f.FlopEstimate(), f.FillRatio())
				return numguard.SolverFunc(func(x, b []float64) { f.Solve(x, b) }), nil
			}})
		if kernel != factor.KernelScalar {
			rungs = append(rungs, numguard.Rung{Name: "supernodal", Prepare: func() (numguard.Solver, error) {
				a, p := expand()
				sym := factor.CholAnalyzeSupernodal(a, p, -1)
				sym.Workers = parallel.Workers(workers)
				f, err := sym.Refactorize(a, nil)
				if err != nil {
					return nil, err
				}
				st.set(sym.LNNZ(), sym.FlopEstimate(), sym.FillRatio())
				return f, nil
			}})
		}
		rungs = append(rungs,
			numguard.Rung{Name: "cholesky", Prepare: func() (numguard.Solver, error) {
				a, p := expand()
				f, err := factor.Cholesky(a, p)
				if err != nil {
					return nil, err
				}
				st.set(f.Sym.LNNZ(), f.Sym.FlopEstimate(), f.Sym.FillRatio())
				return f, nil
			}},
		)
	}
	rungs = append(rungs,
		luRung(expand, cfg.PivotGrowthMax, st),
		cgRung(m, func() *sparse.Matrix { a, _ := expand(); return a }),
	)
	return rungs
}

// luRung factors with partial-pivoting LU and rejects factors whose
// element growth signals lost backward stability.
func luRung(mat func() (*sparse.Matrix, []int), growthMax float64, st *factorStats) numguard.Rung {
	return numguard.Rung{Name: "lu", Prepare: func() (numguard.Solver, error) {
		a, perm := mat()
		f, err := factor.LU(a, perm)
		if err != nil {
			return nil, err
		}
		if g := f.PivotGrowth(a); g > growthMax {
			return nil, fmt.Errorf("pivot growth %.3g exceeds %.3g", g, growthMax)
		}
		fill := 0.0
		if annz := a.NNZ(); annz > 0 {
			fill = float64(f.NNZ()) / float64(annz)
		}
		st.set(f.NNZ(), f.FlopEstimate(), fill)
		return f, nil
	}}
}

// cgRung is the last resort: IC(0)-preconditioned conjugate gradients,
// cold-started per solve. Convergence failures are left to the ladder's
// residual verification — the rung never returns an unverified answer
// as success.
func cgRung(op iterative.Operator, mat func() *sparse.Matrix) numguard.Rung {
	return numguard.Rung{Name: "cg+ic0", Prepare: func() (numguard.Solver, error) {
		pre, err := iterative.NewIC0(mat())
		if err != nil {
			return nil, fmt.Errorf("IC(0) preconditioner: %w", err)
		}
		return numguard.SolverFunc(func(x, b []float64) {
			// Copy b first: callers may alias x and b, and CG needs a
			// zeroed cold start.
			rhs := append([]float64(nil), b...)
			for i := range x {
				x[i] = 0
			}
			// The error is deliberately dropped: the ladder verifies the
			// residual of whatever CG produced and diagnoses on failure.
			_, _ = iterative.CG(op, x, rhs, iterative.CGOptions{Tol: 1e-12, MaxIter: 20 * len(b), M: pre})
		}), nil
	}}
}
