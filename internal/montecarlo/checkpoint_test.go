package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"

	"opera/internal/cancel"
	"opera/internal/obs"
)

// bitsEqual compares two moment matrices bit-for-bit.
func bitsEqual(t *testing.T, what string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", what, len(a), len(b))
	}
	for s := range a {
		for i := range a[s] {
			if math.Float64bits(a[s][i]) != math.Float64bits(b[s][i]) {
				t.Fatalf("%s differs at step %d node %d: %g vs %g", what, s, i, a[s][i], b[s][i])
			}
		}
	}
}

// A run interrupted at a checkpoint and resumed — at any worker count —
// must reproduce the uninterrupted run bit-for-bit, traces included.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	sys := testGrid()
	base := Options{Samples: 120, Step: 5e-11, Steps: 8, Seed: 42, TrackNodes: []int{3, 11}}

	full, err := Run(sys, base)
	if err != nil {
		t.Fatal(err)
	}

	// Capture checkpoints from a single-worker reference run.
	var cps []*Checkpoint
	ckptOpts := base
	ckptOpts.Workers = 1
	ckptOpts.CheckpointEvery = 32
	ckptOpts.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	if _, err := Run(sys, ckptOpts); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("expected at least 2 checkpoints, got %d", len(cps))
	}
	for _, cp := range cps {
		if cp.NextSample%mcChunk != 0 || cp.NextSample <= 0 || cp.NextSample >= base.Samples {
			t.Fatalf("checkpoint off the chunk grid: next=%d", cp.NextSample)
		}
		if len(cp.Traces) != cp.NextSample {
			t.Fatalf("checkpoint traces cover %d samples, want %d", len(cp.Traces), cp.NextSample)
		}
		for workers := 1; workers <= 4; workers++ {
			opts := base
			opts.Workers = workers
			opts.Resume = cp
			res, err := Run(sys, opts)
			if err != nil {
				t.Fatalf("resume from %d with %d workers: %v", cp.NextSample, workers, err)
			}
			if res.SamplesRun != base.Samples {
				t.Fatalf("resume ran %d samples, want %d", res.SamplesRun, base.Samples)
			}
			bitsEqual(t, "mean", res.Mean, full.Mean)
			bitsEqual(t, "variance", res.Variance, full.Variance)
			for k := range full.Traces {
				for s := range full.Traces[k] {
					for j := range full.Traces[k][s] {
						if math.Float64bits(res.Traces[k][s][j]) != math.Float64bits(full.Traces[k][s][j]) {
							t.Fatalf("trace differs at sample %d step %d", k, s)
						}
					}
				}
			}
		}
	}
}

// Checkpoints taken at different worker counts must be interchangeable:
// the merged prefix is worker-count-invariant, so a 4-worker run's
// snapshot resumes a 1-worker run and vice versa.
func TestCheckpointWorkerCountInvariant(t *testing.T) {
	sys := testGrid()
	base := Options{Samples: 96, Step: 5e-11, Steps: 5, Seed: 9}
	grab := func(workers int) *Checkpoint {
		var first *Checkpoint
		opts := base
		opts.Workers = workers
		opts.CheckpointEvery = 48
		opts.OnCheckpoint = func(cp *Checkpoint) {
			if first == nil {
				first = cp
			}
		}
		if _, err := Run(sys, opts); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			t.Fatal("no checkpoint emitted")
		}
		return first
	}
	cp1, cp4 := grab(1), grab(4)
	if cp1.NextSample != cp4.NextSample {
		t.Fatalf("checkpoint boundaries differ: %d vs %d", cp1.NextSample, cp4.NextSample)
	}
	for s := range cp1.Acc {
		for i := range cp1.Acc[s] {
			if cp1.Acc[s][i] != cp4.Acc[s][i] {
				t.Fatalf("accumulator state differs at step %d node %d", s, i)
			}
		}
	}
}

func TestResumeValidation(t *testing.T) {
	sys := testGrid()
	base := Options{Samples: 40, Step: 5e-11, Steps: 4, Seed: 3, CheckpointEvery: 16}
	var cp *Checkpoint
	base.OnCheckpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
		}
	}
	if _, err := Run(sys, base); err != nil {
		t.Fatal(err)
	}
	cases := []func(o *Options){
		func(o *Options) { o.Seed = 99 },
		func(o *Options) { o.Samples = 44 },
		func(o *Options) { o.Steps = 5 },
	}
	for i, mutate := range cases {
		opts := Options{Samples: 40, Step: 5e-11, Steps: 4, Seed: 3, Resume: cp}
		mutate(&opts)
		if _, err := Run(sys, opts); !errors.Is(err, ErrBadResume) {
			t.Errorf("case %d: expected ErrBadResume, got %v", i, err)
		}
	}
	bad := *cp
	bad.NextSample = 7 // off the chunk grid
	opts := Options{Samples: 40, Step: 5e-11, Steps: 4, Seed: 3, Resume: &bad}
	if _, err := Run(sys, opts); !errors.Is(err, ErrBadResume) {
		t.Errorf("off-grid NextSample accepted: %v", err)
	}
}

// A canceled run returns the honest partial result: moments over the
// merged prefix, bit-identical to a fresh run whose budget is exactly
// that prefix.
func TestPartialResultOnCancel(t *testing.T) {
	sys := testGrid()
	ctx, cancelFn := context.WithCancel(context.Background())
	const total = 400
	n := 0
	opts := Options{Samples: total, Step: 5e-11, Steps: 5, Seed: 7, Workers: 2, Ctx: ctx,
		CheckpointEvery: 16,
		OnCheckpoint: func(*Checkpoint) {
			n++
			if n == 2 {
				cancelFn()
			}
		}}
	res, err := Run(sys, opts)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("expected cancellation, got %v", err)
	}
	if res == nil || res.SamplesRun == 0 || res.SamplesRun >= total {
		t.Fatalf("expected a partial result, got %+v", res)
	}
	if res.SamplesRun%mcChunk != 0 {
		t.Fatalf("partial prefix %d not chunk-aligned", res.SamplesRun)
	}
	ref, err := Run(sys, Options{Samples: res.SamplesRun, Step: 5e-11, Steps: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "partial mean", res.Mean, ref.Mean)
	bitsEqual(t, "partial variance", res.Variance, ref.Variance)
}

// Progress must advance monotonically with samples and steps.
func TestProgressAdvances(t *testing.T) {
	sys := testGrid()
	var p obs.Progress
	if _, err := Run(sys, Options{Samples: 20, Step: 5e-11, Steps: 4, Seed: 1, Progress: &p}); err != nil {
		t.Fatal(err)
	}
	// At least one mark per sample plus one per inner transient step.
	if got, min := p.Value(), uint64(20+20*4); got < min {
		t.Fatalf("progress %d < %d", got, min)
	}
}
