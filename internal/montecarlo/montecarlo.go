// Package montecarlo implements the classical Monte Carlo baseline the
// paper compares OPERA against (§6, Table 1: 1000 samples per grid):
// draw a realization of the variation variables, stamp the perturbed
// matrices, refactor the companion matrix, run the fixed-step transient
// and accumulate streaming statistics of every node voltage at every
// time point. The symbolic Cholesky analysis is computed once on the
// union pattern and shared across all samples, so each sample pays only
// the numeric refactorization — the strongest fair version of the
// baseline.
//
// Samples are independent, so the loop fans out across a worker pool.
// The run is deterministic by construction, not by luck:
//
//   - Sample k draws its (ξG, ξL) from randvar.NewStream(Seed, k) — a
//     private substream keyed by the sample index, so the draws do not
//     depend on which worker runs the sample or in what order.
//   - Samples are grouped into fixed-size chunks (boundaries depend
//     only on the sample count), each chunk accumulates into a private
//     moment shard, and shards merge into the global accumulators in
//     ascending chunk order via randvar.Running.Merge.
//
// Together these make Mean/Variance (and Traces) bit-identical for any
// worker count, including 1.
package montecarlo

import (
	"context"
	"fmt"
	"sync"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/parallel"
	"opera/internal/randvar"
	"opera/internal/sparse"
	"opera/internal/transient"
)

// Options configures a Monte Carlo run.
type Options struct {
	Samples int
	Step    float64
	Steps   int
	Method  transient.Method
	Seed    int64
	// Workers caps the sampling worker pool; 0 or negative means
	// GOMAXPROCS. Results are identical for every value.
	Workers int
	// LatinHypercube stratifies the parameter draws (variance
	// reduction); plain i.i.d. sampling matches the paper's setup.
	LatinHypercube bool
	// TrackNodes optionally restricts full per-sample trace collection
	// to these nodes (statistics still cover every node).
	TrackNodes []int
	// Obs, when non-nil, wraps the run in a montecarlo.run span and
	// feeds montecarlo.sample_ms / montecarlo.samples_total /
	// montecarlo.elapsed_ms (plus the transient package's per-step
	// metrics) on the tracer's registry.
	Obs *obs.Tracer
	// Ctx, when non-nil, is polled before every sample and every time
	// step inside a sample; a canceled or expired context stops the run
	// within one step with a structured error wrapping
	// cancel.ErrCanceled. Nil disables the check.
	Ctx context.Context
}

// TrackNodeError reports a TrackNodes entry outside the system's node
// range. It is returned by Validate (and therefore Run) instead of the
// index panic the bad entry would otherwise cause deep inside the
// sample loop.
type TrackNodeError struct {
	Node int // the offending TrackNodes entry
	N    int // valid node indices are [0, N)
}

func (e *TrackNodeError) Error() string {
	return fmt.Sprintf("montecarlo: TrackNodes entry %d outside node range [0, %d)", e.Node, e.N)
}

// Validate checks the options against a system of n nodes. Pass n <= 0
// to skip the TrackNodes upper-bound check when no system is at hand
// (negative entries are always rejected).
func (o Options) Validate(n int) error {
	if o.Samples < 1 {
		return fmt.Errorf("montecarlo: need at least one sample, got %d", o.Samples)
	}
	if o.Step <= 0 || o.Steps < 1 {
		return fmt.Errorf("montecarlo: bad time stepping %g x %d", o.Step, o.Steps)
	}
	for _, node := range o.TrackNodes {
		if node < 0 || (n > 0 && node >= n) {
			return &TrackNodeError{Node: node, N: n}
		}
	}
	return nil
}

// Result accumulates per-node, per-step statistics and optional traces.
type Result struct {
	N     int
	Steps int
	// Mean[s][i] and Variance[s][i] are the sample mean and population
	// variance of node i at step s (s = 0 is the DC initial point).
	Mean, Variance [][]float64
	// Traces[k][s] holds the tracked nodes' voltages for sample k at
	// step s, in TrackNodes order (nil when TrackNodes is empty).
	Traces [][][]float64
	// SamplesRun is the number of completed samples.
	SamplesRun int
}

// mcChunk is the fixed number of samples per accumulation chunk. The
// boundary layout depends only on the sample count — never the worker
// count — which is half of the determinism contract (the other half is
// the per-sample RNG substream).
const mcChunk = 4

// mcShard is one chunk's private accumulation state.
type mcShard struct {
	acc [][]randvar.Running // [step][node]
	lo  int                 // first sample of the chunk
	hi  int                 // one past the last sample
}

// Run executes the Monte Carlo experiment over the two-variable
// (ξG, ξL) Gaussian model of a stamped MNA system.
func Run(sys *mna.System, opts Options) (*Result, error) {
	if err := opts.Validate(sys.N); err != nil {
		return nil, err
	}
	n := sys.N
	nsteps := opts.Steps + 1
	acc := make([][]randvar.Running, nsteps)
	for s := range acc {
		acc[s] = make([]randvar.Running, n)
	}
	res := &Result{N: n, Steps: opts.Steps}
	if len(opts.TrackNodes) > 0 {
		res.Traces = make([][][]float64, opts.Samples)
	}

	workers := parallel.Workers(opts.Workers)
	tr := opts.Obs
	runStart := time.Now()
	sp := tr.Start("montecarlo.run",
		obs.Int("samples", opts.Samples), obs.Int("steps", opts.Steps),
		obs.Int("n", n), obs.Int("workers", workers))
	sp.MarkAllocsApprox() // samples allocate concurrently on worker goroutines
	defer sp.End()
	reg := tr.Registry()
	sampleMS := reg.Histogram("montecarlo.sample_ms", obs.MSBuckets)
	samplesTotal := reg.Counter("montecarlo.samples_total")
	reg.Gauge("parallel.workers").Set(float64(workers))

	// One symbolic analysis on the union pattern of G + C/h serves every
	// sample (read-only during factorization, safe to share).
	scale := 1 / opts.Step
	if opts.Method == transient.Trapezoidal {
		scale = 2 / opts.Step
	}
	union := sys.UnionPattern()
	pattern := sparse.Add(1, union, scale, union)
	perm := order.NestedDissection(order.NewGraph(pattern), 0)
	sym := factor.CholAnalyze(pattern, perm)

	var lhsDraws [][]float64
	if opts.LatinHypercube {
		lhsDraws = randvar.LatinHypercubeNormal(randvar.NewStream(opts.Seed, 0), opts.Samples, mna.Dims)
	}

	// Per-worker mutable state: the recycled numeric factor and the
	// per-worker sample-time histogram. Shards are pooled because a
	// chunk's accumulator array (nsteps×n) is the largest transient
	// allocation of the loop.
	reuse := make([]*factor.CholFactor, workers)
	workerMS := make([]*obs.Histogram, workers)
	for w := 0; w < workers; w++ {
		workerMS[w] = reg.WorkerHistogram("montecarlo.sample_ms", w, obs.MSBuckets)
	}
	shardPool := sync.Pool{New: func() any {
		sh := &mcShard{acc: make([][]randvar.Running, nsteps)}
		for s := range sh.acc {
			sh.acc[s] = make([]randvar.Running, n)
		}
		return sh
	}}

	chunks := (opts.Samples + mcChunk - 1) / mcChunk
	runChunk := func(worker, chunk int) (*mcShard, error) {
		sh := shardPool.Get().(*mcShard)
		sh.lo = chunk * mcChunk
		sh.hi = sh.lo + mcChunk
		if sh.hi > opts.Samples {
			sh.hi = opts.Samples
		}
		for s := range sh.acc {
			for i := range sh.acc[s] {
				sh.acc[s][i].Reset()
			}
		}
		u := make([]float64, n)
		for k := sh.lo; k < sh.hi; k++ {
			if err := cancel.Poll(opts.Ctx, "montecarlo", k); err != nil {
				return nil, err
			}
			var sampleStart time.Time
			if sampleMS != nil {
				sampleStart = time.Now()
			}
			xiG, xiL := drawSample(opts, lhsDraws, k)
			g, c, rhs := sys.Realize(xiG, xiL)
			st, err := transient.NewStepper(g, c, transient.Options{
				Step: opts.Step, Steps: opts.Steps, Method: opts.Method,
				Symbolic: sym, ReuseFactor: reuse[worker], Obs: opts.Obs,
			})
			if err != nil {
				return nil, fmt.Errorf("montecarlo: sample %d: %w", k, err)
			}
			reuse[worker] = st.Factor()
			rhs(0, u)
			if err := st.InitDC(u); err != nil {
				return nil, fmt.Errorf("montecarlo: sample %d DC: %w", k, err)
			}
			record(res, sh.acc, opts, k, 0, st.State())
			for s := 1; s <= opts.Steps; s++ {
				if err := cancel.Poll(opts.Ctx, "montecarlo", k); err != nil {
					return nil, err
				}
				rhs(float64(s)*opts.Step, u)
				if err := st.Advance(u); err != nil {
					return nil, fmt.Errorf("montecarlo: sample %d step %d: %w", k, s, err)
				}
				record(res, sh.acc, opts, k, s, st.State())
			}
			if sampleMS != nil {
				sampleMS.ObserveSince(sampleStart)
				workerMS[worker].ObserveSince(sampleStart)
				samplesTotal.Inc()
			}
		}
		return sh, nil
	}
	mergeChunk := func(_ int, sh *mcShard) error {
		for s := range acc {
			for i := range acc[s] {
				acc[s][i].Merge(&sh.acc[s][i])
			}
		}
		res.SamplesRun = sh.hi
		shardPool.Put(sh)
		return nil
	}
	if err := parallel.OrderedChunks(workers, chunks, 2*workers, runChunk, mergeChunk); err != nil {
		return nil, err
	}

	reg.Gauge("montecarlo.elapsed_ms").Set(float64(time.Since(runStart)) / float64(time.Millisecond))
	res.Mean = make([][]float64, nsteps)
	res.Variance = make([][]float64, nsteps)
	for s := 0; s < nsteps; s++ {
		res.Mean[s] = make([]float64, n)
		res.Variance[s] = make([]float64, n)
		for i := 0; i < n; i++ {
			res.Mean[s][i] = acc[s][i].Mean()
			res.Variance[s][i] = acc[s][i].Variance()
		}
	}
	return res, nil
}

// drawSample produces sample k's parameter realization. In i.i.d. mode
// each sample owns the substream keyed by its index — two NormFloat64
// draws from a stream no other sample touches — so the value depends
// only on (Seed, k). Latin hypercube mode reads the precomputed table.
func drawSample(opts Options, lhs [][]float64, k int) (xiG, xiL float64) {
	if lhs != nil {
		return lhs[k][0], lhs[k][1]
	}
	rng := randvar.NewStream(opts.Seed, int64(k))
	return rng.NormFloat64(), rng.NormFloat64()
}

// record pushes sample k's state at one step into the chunk-private
// accumulators and, when tracking is on, stores the trace row. Traces
// are indexed by sample, so workers write disjoint entries.
func record(res *Result, acc [][]randvar.Running, opts Options, sample, step int, x []float64) {
	for i, v := range x {
		acc[step][i].Push(v)
	}
	if len(opts.TrackNodes) == 0 {
		return
	}
	if res.Traces[sample] == nil {
		res.Traces[sample] = make([][]float64, opts.Steps+1)
	}
	tr := make([]float64, len(opts.TrackNodes))
	for j, node := range opts.TrackNodes {
		tr[j] = x[node]
	}
	res.Traces[sample][step] = tr
}
