// Package montecarlo implements the classical Monte Carlo baseline the
// paper compares OPERA against (§6, Table 1: 1000 samples per grid):
// draw a realization of the variation variables, stamp the perturbed
// matrices, refactor the companion matrix, run the fixed-step transient
// and accumulate streaming statistics of every node voltage at every
// time point. The symbolic Cholesky analysis is computed once on the
// union pattern and shared across all samples, so each sample pays only
// the numeric refactorization — the strongest fair version of the
// baseline.
package montecarlo

import (
	"fmt"
	"math/rand"
	"time"

	"opera/internal/factor"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/randvar"
	"opera/internal/sparse"
	"opera/internal/transient"
)

// Options configures a Monte Carlo run.
type Options struct {
	Samples int
	Step    float64
	Steps   int
	Method  transient.Method
	Seed    int64
	// LatinHypercube stratifies the parameter draws (variance
	// reduction); plain i.i.d. sampling matches the paper's setup.
	LatinHypercube bool
	// TrackNodes optionally restricts full per-sample trace collection
	// to these nodes (statistics still cover every node).
	TrackNodes []int
	// Obs, when non-nil, wraps the run in a montecarlo.run span and
	// feeds montecarlo.sample_ms / montecarlo.samples_total /
	// montecarlo.elapsed_ms (plus the transient package's per-step
	// metrics) on the tracer's registry.
	Obs *obs.Tracer
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Samples < 1 {
		return fmt.Errorf("montecarlo: need at least one sample, got %d", o.Samples)
	}
	if o.Step <= 0 || o.Steps < 1 {
		return fmt.Errorf("montecarlo: bad time stepping %g x %d", o.Step, o.Steps)
	}
	return nil
}

// Result accumulates per-node, per-step statistics and optional traces.
type Result struct {
	N     int
	Steps int
	// Mean[s][i] and Variance[s][i] are the sample mean and population
	// variance of node i at step s (s = 0 is the DC initial point).
	Mean, Variance [][]float64
	// Traces[k][s] holds the tracked nodes' voltages for sample k at
	// step s, in TrackNodes order (nil when TrackNodes is empty).
	Traces [][][]float64
	// SamplesRun is the number of completed samples.
	SamplesRun int
}

// Run executes the Monte Carlo experiment over the two-variable
// (ξG, ξL) Gaussian model of a stamped MNA system.
func Run(sys *mna.System, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := sys.N
	nsteps := opts.Steps + 1
	acc := make([][]randvar.Running, nsteps)
	for s := range acc {
		acc[s] = make([]randvar.Running, n)
	}
	res := &Result{N: n, Steps: opts.Steps}
	if len(opts.TrackNodes) > 0 {
		res.Traces = make([][][]float64, opts.Samples)
	}

	tr := opts.Obs
	runStart := time.Now()
	sp := tr.Start("montecarlo.run",
		obs.Int("samples", opts.Samples), obs.Int("steps", opts.Steps), obs.Int("n", n))
	defer sp.End()
	reg := tr.Registry()
	sampleMS := reg.Histogram("montecarlo.sample_ms", obs.MSBuckets)
	samplesTotal := reg.Counter("montecarlo.samples_total")

	// One symbolic analysis on the union pattern of G + C/h serves every
	// sample.
	scale := 1 / opts.Step
	if opts.Method == transient.Trapezoidal {
		scale = 2 / opts.Step
	}
	union := sys.UnionPattern()
	pattern := sparse.Add(1, union, scale, union)
	perm := order.NestedDissection(order.NewGraph(pattern), 0)
	sym := factor.CholAnalyze(pattern, perm)

	rng := randvar.NewStream(opts.Seed, 0)
	var lhsDraws [][]float64
	if opts.LatinHypercube {
		lhsDraws = randvar.LatinHypercubeNormal(rng, opts.Samples, mna.Dims)
	}
	var reuse *factor.CholFactor
	for k := 0; k < opts.Samples; k++ {
		var sampleStart time.Time
		if sampleMS != nil {
			sampleStart = time.Now()
		}
		xiG, xiL := drawSample(rng, lhsDraws, k)
		g, c, rhs := sys.Realize(xiG, xiL)
		st, err := transient.NewStepper(g, c, transient.Options{
			Step: opts.Step, Steps: opts.Steps, Method: opts.Method,
			Symbolic: sym, ReuseFactor: reuse, Obs: opts.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("montecarlo: sample %d: %w", k, err)
		}
		reuse = st.Factor()
		u := make([]float64, n)
		rhs(0, u)
		if err := st.InitDC(u); err != nil {
			return nil, fmt.Errorf("montecarlo: sample %d DC: %w", k, err)
		}
		record(res, acc, opts, k, 0, st.State())
		for s := 1; s <= opts.Steps; s++ {
			rhs(float64(s)*opts.Step, u)
			if err := st.Advance(u); err != nil {
				return nil, fmt.Errorf("montecarlo: sample %d step %d: %w", k, s, err)
			}
			record(res, acc, opts, k, s, st.State())
		}
		res.SamplesRun = k + 1
		if sampleMS != nil {
			sampleMS.ObserveSince(sampleStart)
			samplesTotal.Inc()
		}
	}
	reg.Gauge("montecarlo.elapsed_ms").Set(float64(time.Since(runStart)) / float64(time.Millisecond))
	res.Mean = make([][]float64, nsteps)
	res.Variance = make([][]float64, nsteps)
	for s := 0; s < nsteps; s++ {
		res.Mean[s] = make([]float64, n)
		res.Variance[s] = make([]float64, n)
		for i := 0; i < n; i++ {
			res.Mean[s][i] = acc[s][i].Mean()
			res.Variance[s][i] = acc[s][i].Variance()
		}
	}
	return res, nil
}

func drawSample(rng *rand.Rand, lhs [][]float64, k int) (xiG, xiL float64) {
	if lhs != nil {
		return lhs[k][0], lhs[k][1]
	}
	return rng.NormFloat64(), rng.NormFloat64()
}

func record(res *Result, acc [][]randvar.Running, opts Options, sample, step int, x []float64) {
	for i, v := range x {
		acc[step][i].Push(v)
	}
	if len(opts.TrackNodes) == 0 {
		return
	}
	if res.Traces[sample] == nil {
		res.Traces[sample] = make([][]float64, opts.Steps+1)
	}
	tr := make([]float64, len(opts.TrackNodes))
	for j, node := range opts.TrackNodes {
		tr[j] = x[node]
	}
	res.Traces[sample][step] = tr
}
