// Package montecarlo implements the classical Monte Carlo baseline the
// paper compares OPERA against (§6, Table 1: 1000 samples per grid):
// draw a realization of the variation variables, stamp the perturbed
// matrices, refactor the companion matrix, run the fixed-step transient
// and accumulate streaming statistics of every node voltage at every
// time point. The symbolic Cholesky analysis is computed once on the
// union pattern and shared across all samples, so each sample pays only
// the numeric refactorization — the strongest fair version of the
// baseline.
//
// Samples are independent, so the loop fans out across a worker pool.
// The run is deterministic by construction, not by luck:
//
//   - Sample k draws its (ξG, ξL) from randvar.NewStream(Seed, k) — a
//     private substream keyed by the sample index, so the draws do not
//     depend on which worker runs the sample or in what order.
//   - Samples are grouped into fixed-size chunks (boundaries depend
//     only on the sample count), each chunk accumulates into a private
//     moment shard, and shards merge into the global accumulators in
//     ascending chunk order via randvar.Running.Merge.
//
// Together these make Mean/Variance (and Traces) bit-identical for any
// worker count, including 1.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/parallel"
	"opera/internal/randvar"
	"opera/internal/sparse"
	"opera/internal/transient"
)

// Options configures a Monte Carlo run.
type Options struct {
	Samples int
	Step    float64
	Steps   int
	Method  transient.Method
	Seed    int64
	// Workers caps the sampling worker pool; 0 or negative means
	// GOMAXPROCS. Results are identical for every value.
	Workers int
	// LatinHypercube stratifies the parameter draws (variance
	// reduction); plain i.i.d. sampling matches the paper's setup.
	LatinHypercube bool
	// TrackNodes optionally restricts full per-sample trace collection
	// to these nodes (statistics still cover every node).
	TrackNodes []int
	// Obs, when non-nil, wraps the run in a montecarlo.run span and
	// feeds montecarlo.sample_ms / montecarlo.samples_total /
	// montecarlo.elapsed_ms (plus the transient package's per-step
	// metrics) on the tracer's registry.
	Obs *obs.Tracer
	// Ctx, when non-nil, is polled before every sample and every time
	// step inside a sample; a canceled or expired context stops the run
	// within one step with a structured error wrapping
	// cancel.ErrCanceled. When samples have already been merged, the
	// partial Result (moments over the merged prefix, SamplesRun set
	// accordingly) is returned alongside the error so callers can serve
	// a statistically honest degraded answer. Nil disables the check.
	Ctx context.Context
	// Progress, when non-nil, is advanced once per completed sample
	// (and, via the inner transient stepper, once per time step) — the
	// liveness signal a stall watchdog monitors. Nil disables it.
	Progress *obs.Progress
	// CheckpointEvery emits a resumable Checkpoint through OnCheckpoint
	// whenever at least that many new samples have been merged since
	// the last snapshot. 0 disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives periodic snapshots of the merged prefix. It
	// runs on the merge goroutine (never concurrently with itself); a
	// slow callback back-pressures the sampling pipeline but cannot
	// corrupt it. The snapshot is a deep copy — safe to serialize after
	// the call returns.
	OnCheckpoint func(cp *Checkpoint)
	// Resume restarts a run from a previous Checkpoint: merged moments
	// are restored exactly and sampling continues at cp.NextSample.
	// Because sample k's RNG substream depends only on (Seed, k) and
	// chunks merge in ascending order, the final result is bit-identical
	// to an uninterrupted run, at any worker count. A checkpoint whose
	// shape does not match the options fails with ErrBadResume.
	Resume *Checkpoint
}

// ErrBadResume rejects a Resume checkpoint that does not match the run
// it is being applied to (different system size, sample budget, seed or
// a next-sample index off the chunk grid). Callers holding a possibly
// stale snapshot should discard it and restart from scratch.
var ErrBadResume = errors.New("montecarlo: incompatible resume checkpoint")

// Checkpoint is a resumable snapshot of a Monte Carlo run: the
// Chan/Pébay accumulator states of every merged sample, the tracked
// traces of the merged prefix, and the index of the next sample to
// draw. NextSample always sits on a chunk boundary, so the resumed
// run's chunk layout — and therefore its merge order and its
// floating-point association — is identical to the uninterrupted run's.
type Checkpoint struct {
	N          int   `json:"n"`
	Steps      int   `json:"steps"`
	Samples    int   `json:"samples"`
	Seed       int64 `json:"seed"`
	NextSample int   `json:"next_sample"`
	// Acc[s][i] is the accumulator state of node i at step s over
	// samples [0, NextSample).
	Acc [][]randvar.RunningState `json:"acc"`
	// Traces holds the tracked-node traces of the merged prefix when
	// TrackNodes is set (indexed by sample, like Result.Traces).
	Traces [][][]float64 `json:"traces,omitempty"`
}

// compatible validates a checkpoint against the run about to use it.
func (cp *Checkpoint) compatible(n int, opts Options) error {
	nsteps := opts.Steps + 1
	switch {
	case cp.N != n:
		return fmt.Errorf("%w: snapshot has %d nodes, run has %d", ErrBadResume, cp.N, n)
	case cp.Steps != opts.Steps:
		return fmt.Errorf("%w: snapshot has %d steps, run has %d", ErrBadResume, cp.Steps, opts.Steps)
	case cp.Samples != opts.Samples:
		return fmt.Errorf("%w: snapshot budget %d samples, run wants %d", ErrBadResume, cp.Samples, opts.Samples)
	case cp.Seed != opts.Seed:
		return fmt.Errorf("%w: snapshot seed %d, run seed %d", ErrBadResume, cp.Seed, opts.Seed)
	case cp.NextSample < 0 || cp.NextSample > opts.Samples,
		cp.NextSample%mcChunk != 0 && cp.NextSample != opts.Samples:
		return fmt.Errorf("%w: next sample %d off the chunk grid", ErrBadResume, cp.NextSample)
	case len(cp.Acc) != nsteps:
		return fmt.Errorf("%w: snapshot has %d step rows, want %d", ErrBadResume, len(cp.Acc), nsteps)
	}
	for s := range cp.Acc {
		if len(cp.Acc[s]) != n {
			return fmt.Errorf("%w: step %d has %d nodes, want %d", ErrBadResume, s, len(cp.Acc[s]), n)
		}
	}
	return nil
}

// TrackNodeError reports a TrackNodes entry outside the system's node
// range. It is returned by Validate (and therefore Run) instead of the
// index panic the bad entry would otherwise cause deep inside the
// sample loop.
type TrackNodeError struct {
	Node int // the offending TrackNodes entry
	N    int // valid node indices are [0, N)
}

func (e *TrackNodeError) Error() string {
	return fmt.Sprintf("montecarlo: TrackNodes entry %d outside node range [0, %d)", e.Node, e.N)
}

// Validate checks the options against a system of n nodes. Pass n <= 0
// to skip the TrackNodes upper-bound check when no system is at hand
// (negative entries are always rejected).
func (o Options) Validate(n int) error {
	if o.Samples < 1 {
		return fmt.Errorf("montecarlo: need at least one sample, got %d", o.Samples)
	}
	if o.Step <= 0 || o.Steps < 1 {
		return fmt.Errorf("montecarlo: bad time stepping %g x %d", o.Step, o.Steps)
	}
	for _, node := range o.TrackNodes {
		if node < 0 || (n > 0 && node >= n) {
			return &TrackNodeError{Node: node, N: n}
		}
	}
	return nil
}

// Result accumulates per-node, per-step statistics and optional traces.
type Result struct {
	N     int
	Steps int
	// Mean[s][i] and Variance[s][i] are the sample mean and population
	// variance of node i at step s (s = 0 is the DC initial point).
	Mean, Variance [][]float64
	// Traces[k][s] holds the tracked nodes' voltages for sample k at
	// step s, in TrackNodes order (nil when TrackNodes is empty).
	Traces [][][]float64
	// SamplesRun is the number of completed samples.
	SamplesRun int
	// FactorNNZ, FillRatio and FactorFlops describe the shared symbolic
	// Cholesky analysis that every sample refactors numerically:
	// nnz(L), nnz(L)/nnz(upper(A)), and the per-sample symbolic flop
	// estimate times SamplesRun. All deterministic given the pattern.
	FactorNNZ   int
	FillRatio   float64
	FactorFlops int64
	// Kernel names the numeric factorization kernel the samples ran on
	// ("supernodal" or "cholesky").
	Kernel string
}

// mcChunk is the fixed number of samples per accumulation chunk. The
// boundary layout depends only on the sample count — never the worker
// count — which is half of the determinism contract (the other half is
// the per-sample RNG substream).
const mcChunk = 4

// mcShard is one chunk's private accumulation state.
type mcShard struct {
	acc [][]randvar.Running // [step][node]
	lo  int                 // first sample of the chunk
	hi  int                 // one past the last sample
}

// Run executes the Monte Carlo experiment over the two-variable
// (ξG, ξL) Gaussian model of a stamped MNA system.
func Run(sys *mna.System, opts Options) (*Result, error) {
	if err := opts.Validate(sys.N); err != nil {
		return nil, err
	}
	n := sys.N
	nsteps := opts.Steps + 1
	acc := make([][]randvar.Running, nsteps)
	for s := range acc {
		acc[s] = make([]randvar.Running, n)
	}
	res := &Result{N: n, Steps: opts.Steps}
	if len(opts.TrackNodes) > 0 {
		res.Traces = make([][][]float64, opts.Samples)
	}

	// Resume: restore the merged prefix exactly and pick up sampling at
	// the snapshot's chunk boundary.
	startChunk := 0
	if cp := opts.Resume; cp != nil {
		if err := cp.compatible(n, opts); err != nil {
			return nil, err
		}
		for s := range acc {
			for i := range acc[s] {
				acc[s][i].Restore(cp.Acc[s][i])
			}
		}
		if res.Traces != nil {
			copy(res.Traces, cp.Traces)
		}
		res.SamplesRun = cp.NextSample
		// Ceiling division covers the NextSample == Samples case, where
		// the final (possibly short) chunk is already merged.
		startChunk = (cp.NextSample + mcChunk - 1) / mcChunk
	}

	workers := parallel.Workers(opts.Workers)
	tr := opts.Obs
	runStart := time.Now()
	sp := tr.Start("montecarlo.run",
		obs.Int("samples", opts.Samples), obs.Int("steps", opts.Steps),
		obs.Int("n", n), obs.Int("workers", workers))
	sp.MarkAllocsApprox() // samples allocate concurrently on worker goroutines
	defer sp.End()
	reg := tr.Registry()
	sampleMS := reg.Histogram("montecarlo.sample_ms", obs.MSBuckets)
	samplesTotal := reg.Counter("montecarlo.samples_total")
	reg.Gauge("parallel.workers").Set(float64(workers))

	// One symbolic analysis on the union pattern of G + C/h serves every
	// sample (read-only during factorization, safe to share).
	scale := 1 / opts.Step
	if opts.Method == transient.Trapezoidal {
		scale = 2 / opts.Step
	}
	union := sys.UnionPattern()
	pattern := sparse.Add(1, union, scale, union)
	perm := order.NestedDissection(order.NewGraph(pattern), 0)
	sym := factor.Analyze(pattern, perm, factor.KernelSupernodal)

	var lhsDraws [][]float64
	if opts.LatinHypercube {
		lhsDraws = randvar.LatinHypercubeNormal(randvar.NewStream(opts.Seed, 0), opts.Samples, mna.Dims)
	}

	// Per-worker mutable state: the recycled numeric factor and the
	// per-worker sample-time histogram. Shards are pooled because a
	// chunk's accumulator array (nsteps×n) is the largest transient
	// allocation of the loop.
	reuse := make([]factor.ScalarFactor, workers)
	workerMS := make([]*obs.Histogram, workers)
	for w := 0; w < workers; w++ {
		workerMS[w] = reg.WorkerHistogram("montecarlo.sample_ms", w, obs.MSBuckets)
	}
	shardPool := sync.Pool{New: func() any {
		sh := &mcShard{acc: make([][]randvar.Running, nsteps)}
		for s := range sh.acc {
			sh.acc[s] = make([]randvar.Running, n)
		}
		return sh
	}}

	chunks := (opts.Samples + mcChunk - 1) / mcChunk
	runChunk := func(worker, chunk int) (*mcShard, error) {
		chunk += startChunk
		sh := shardPool.Get().(*mcShard)
		sh.lo = chunk * mcChunk
		sh.hi = sh.lo + mcChunk
		if sh.hi > opts.Samples {
			sh.hi = opts.Samples
		}
		for s := range sh.acc {
			for i := range sh.acc[s] {
				sh.acc[s][i].Reset()
			}
		}
		u := make([]float64, n)
		for k := sh.lo; k < sh.hi; k++ {
			if err := cancel.Poll(opts.Ctx, "montecarlo", k); err != nil {
				return nil, err
			}
			var sampleStart time.Time
			if sampleMS != nil {
				sampleStart = time.Now()
			}
			xiG, xiL := drawSample(opts, lhsDraws, k)
			g, c, rhs := sys.Realize(xiG, xiL)
			st, err := transient.NewStepper(g, c, transient.Options{
				Step: opts.Step, Steps: opts.Steps, Method: opts.Method,
				Symbolic: sym, ReuseFactor: reuse[worker], Obs: opts.Obs,
				Progress: opts.Progress,
			})
			if err != nil {
				return nil, fmt.Errorf("montecarlo: sample %d: %w", k, err)
			}
			reuse[worker] = st.Factor()
			rhs(0, u)
			if err := st.InitDC(u); err != nil {
				return nil, fmt.Errorf("montecarlo: sample %d DC: %w", k, err)
			}
			record(res, sh.acc, opts, k, 0, st.State())
			for s := 1; s <= opts.Steps; s++ {
				if err := cancel.Poll(opts.Ctx, "montecarlo", k); err != nil {
					return nil, err
				}
				rhs(float64(s)*opts.Step, u)
				if err := st.Advance(u); err != nil {
					return nil, fmt.Errorf("montecarlo: sample %d step %d: %w", k, s, err)
				}
				record(res, sh.acc, opts, k, s, st.State())
			}
			if sampleMS != nil {
				sampleMS.ObserveSince(sampleStart)
				workerMS[worker].ObserveSince(sampleStart)
				samplesTotal.Inc()
			}
			opts.Progress.Mark()
		}
		return sh, nil
	}
	// lastCkpt tracks the merged-sample count at the latest snapshot; it
	// is only touched on the merge goroutine (OrderedChunks serializes
	// merges), so no locking is needed.
	lastCkpt := res.SamplesRun
	mergeChunk := func(_ int, sh *mcShard) error {
		for s := range acc {
			for i := range acc[s] {
				acc[s][i].Merge(&sh.acc[s][i])
			}
		}
		res.SamplesRun = sh.hi
		shardPool.Put(sh)
		if opts.OnCheckpoint != nil && opts.CheckpointEvery > 0 &&
			sh.hi < opts.Samples && sh.hi-lastCkpt >= opts.CheckpointEvery {
			lastCkpt = sh.hi
			opts.OnCheckpoint(snapshot(res, acc, opts, n, sh.hi))
		}
		return nil
	}
	runErr := parallel.OrderedChunks(workers, chunks-startChunk, 2*workers, runChunk, mergeChunk)

	finalize := func() {
		res.Mean = make([][]float64, nsteps)
		res.Variance = make([][]float64, nsteps)
		for s := 0; s < nsteps; s++ {
			res.Mean[s] = make([]float64, n)
			res.Variance[s] = make([]float64, n)
			for i := 0; i < n; i++ {
				res.Mean[s][i] = acc[s][i].Mean()
				res.Variance[s][i] = acc[s][i].Variance()
			}
		}
		res.FactorNNZ = sym.LNNZ()
		res.FillRatio = sym.FillRatio()
		res.FactorFlops = int64(res.SamplesRun) * sym.FlopEstimate()
		res.Kernel = sym.KernelName()
	}
	if runErr != nil {
		// A canceled run (deadline, drain, stall watchdog) with merged
		// samples still has honest statistics over [0, SamplesRun): the
		// merged prefix is contiguous (merges are strictly ascending) and
		// equals what a run with Samples=SamplesRun would have produced.
		// Return it alongside the error so the service can serve a
		// degraded result; every other failure returns nil as before.
		if errors.Is(runErr, cancel.ErrCanceled) && res.SamplesRun > 0 {
			if res.Traces != nil {
				// Drop traces computed by chunks that never merged so the
				// result covers exactly the merged prefix.
				for k := res.SamplesRun; k < len(res.Traces); k++ {
					res.Traces[k] = nil
				}
			}
			finalize()
			return res, runErr
		}
		return nil, runErr
	}

	reg.Gauge("montecarlo.elapsed_ms").Set(float64(time.Since(runStart)) / float64(time.Millisecond))
	finalize()
	return res, nil
}

// snapshot deep-copies the merged prefix into a Checkpoint. It runs on
// the merge goroutine: accumulators for merged chunks are quiescent and
// trace rows below the merge frontier were written before their chunk
// was handed to the merger, so the copy is race-free.
func snapshot(res *Result, acc [][]randvar.Running, opts Options, n, next int) *Checkpoint {
	cp := &Checkpoint{
		N: n, Steps: opts.Steps, Samples: opts.Samples, Seed: opts.Seed,
		NextSample: next,
		Acc:        make([][]randvar.RunningState, len(acc)),
	}
	for s := range acc {
		cp.Acc[s] = make([]randvar.RunningState, n)
		for i := range acc[s] {
			cp.Acc[s][i] = acc[s][i].State()
		}
	}
	if res.Traces != nil {
		cp.Traces = make([][][]float64, next)
		copy(cp.Traces, res.Traces[:next])
	}
	return cp
}

// drawSample produces sample k's parameter realization. In i.i.d. mode
// each sample owns the substream keyed by its index — two NormFloat64
// draws from a stream no other sample touches — so the value depends
// only on (Seed, k). Latin hypercube mode reads the precomputed table.
func drawSample(opts Options, lhs [][]float64, k int) (xiG, xiL float64) {
	if lhs != nil {
		return lhs[k][0], lhs[k][1]
	}
	rng := randvar.NewStream(opts.Seed, int64(k))
	return rng.NormFloat64(), rng.NormFloat64()
}

// record pushes sample k's state at one step into the chunk-private
// accumulators and, when tracking is on, stores the trace row. Traces
// are indexed by sample, so workers write disjoint entries.
func record(res *Result, acc [][]randvar.Running, opts Options, sample, step int, x []float64) {
	for i, v := range x {
		acc[step][i].Push(v)
	}
	if len(opts.TrackNodes) == 0 {
		return
	}
	if res.Traces[sample] == nil {
		res.Traces[sample] = make([][]float64, opts.Steps+1)
	}
	tr := make([]float64, len(opts.TrackNodes))
	for j, node := range opts.TrackNodes {
		tr[j] = x[node]
	}
	res.Traces[sample][step] = tr
}
