package montecarlo

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"opera/internal/cancel"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (worker pools need a moment to unwind after Run returns).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), base)
}

// TestRunCancelMidSampling cancels a large sampling run in flight: the
// error is structured, the run returns promptly, and the worker pool
// leaves no goroutines behind.
func TestRunCancelMidSampling(t *testing.T) {
	sys := testGrid()
	base := runtime.NumGoroutine()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go func() {
		time.Sleep(30 * time.Millisecond)
		stop()
	}()
	start := time.Now()
	_, err := Run(sys, Options{
		Samples: 1_000_000, Step: 5e-11, Steps: 5, Seed: 1,
		Workers: 4, Ctx: ctx,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want error wrapping cancel.ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not expose the context cause: %v", err)
	}
	var ce *cancel.Error
	if !errors.As(err, &ce) || ce.Stage != "montecarlo" {
		t.Errorf("want *cancel.Error with stage montecarlo, got %v", err)
	}
	// A million samples take minutes; a prompt cancel returns in well
	// under ten seconds even on a loaded CI box.
	if elapsed > 10*time.Second {
		t.Errorf("cancel took %v, not bounded by one sample", elapsed)
	}
	waitGoroutines(t, base)
}

// TestRunCancelDeadline expires a deadline mid-run and checks the
// deadline cause is visible through the wrapper.
func TestRunCancelDeadline(t *testing.T) {
	sys := testGrid()
	ctx, stop := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer stop()
	_, err := Run(sys, Options{
		Samples: 1_000_000, Step: 5e-11, Steps: 5, Seed: 1, Ctx: ctx,
	})
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	// The same system runs fine afterwards.
	if _, err := Run(sys, Options{Samples: 10, Step: 5e-11, Steps: 5, Seed: 1}); err != nil {
		t.Fatalf("rerun after canceled run: %v", err)
	}
}
