package montecarlo

import (
	"errors"
	"math"
	"testing"

	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/transient"
)

func testGrid() *mna.System {
	id := func(r, c int) int { return r*4 + c }
	nl := &netlist.Netlist{NumNodes: 16}
	n := 0
	addR := func(a, b int) {
		nl.Resistors = append(nl.Resistors, netlist.Resistor{
			Name: string(rune('a' + n%26)), A: a, B: b, Ohms: 1.5, OnDie: true})
		n++
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if c < 3 {
				addR(id(r, c), id(r, c+1))
			}
			if r < 3 {
				addR(id(r, c), id(r+1, c))
			}
		}
	}
	for i := 0; i < 16; i++ {
		nl.Caps = append(nl.Caps, netlist.Capacitor{
			Name: "c", A: i, B: netlist.Ground, Farads: 2e-11, GateFrac: 0.4})
	}
	nl.Sources = []netlist.CurrentSource{
		{Name: "s", A: id(3, 3), Wave: &netlist.Pulse{
			Low: 0.001, High: 0.03, Delay: 1e-10, Rise: 1e-10, Width: 3e-10, Fall: 1e-10, Period: 1e-9,
		}, LeffSens: 1, Region: 0},
	}
	nl.Pads = []netlist.Pad{{Name: "p", Node: 0, VDD: 1.2, Rpin: 0.1, OnDie: true}}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		panic(err)
	}
	return sys
}

func TestRunBasicStatistics(t *testing.T) {
	sys := testGrid()
	res, err := Run(sys, Options{Samples: 300, Step: 5e-11, Steps: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesRun != 300 {
		t.Errorf("samples run %d", res.SamplesRun)
	}
	// Voltages must be physical: between 0 and VDD, with nonzero drops
	// and nonzero variance at loaded nodes.
	for s := 0; s <= 20; s++ {
		for i := 0; i < sys.N; i++ {
			v := res.Mean[s][i]
			if v <= 0 || v > 1.2+1e-9 {
				t.Fatalf("unphysical mean voltage %g at step %d node %d", v, s, i)
			}
			if res.Variance[s][i] < 0 {
				t.Fatalf("negative variance at step %d node %d", s, i)
			}
		}
	}
	// The far corner node (15) sees the load: its drop and variance
	// must be the largest in the grid at the pulse peak.
	peakStep := 8 // 4e-10 ≈ pulse top
	maxVarNode := 0
	for i := range res.Variance[peakStep] {
		if res.Variance[peakStep][i] > res.Variance[peakStep][maxVarNode] {
			maxVarNode = i
		}
	}
	if maxVarNode != 15 {
		t.Errorf("max variance at node %d, want 15 (the loaded corner)", maxVarNode)
	}
}

func TestReproducibleBySeed(t *testing.T) {
	sys := testGrid()
	opt := Options{Samples: 50, Step: 5e-11, Steps: 10, Seed: 7}
	a, err := Run(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Mean {
		for i := range a.Mean[s] {
			if a.Mean[s][i] != b.Mean[s][i] {
				t.Fatalf("means differ at step %d node %d", s, i)
			}
		}
	}
	opt.Seed = 8
	c, err := Run(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range a.Mean {
		for i := range a.Mean[s] {
			if a.Mean[s][i] != c.Mean[s][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds gave identical results")
	}
}

func TestTraces(t *testing.T) {
	sys := testGrid()
	res, err := Run(sys, Options{
		Samples: 10, Step: 5e-11, Steps: 5, Seed: 3, TrackNodes: []int{15, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 10 {
		t.Fatalf("traces for %d samples", len(res.Traces))
	}
	for k := range res.Traces {
		if len(res.Traces[k]) != 6 {
			t.Fatalf("sample %d has %d steps", k, len(res.Traces[k]))
		}
		for s := range res.Traces[k] {
			if len(res.Traces[k][s]) != 2 {
				t.Fatalf("trace width %d", len(res.Traces[k][s]))
			}
			// Node 15 (loaded corner) always at or below node 0 (pad).
			if res.Traces[k][s][0] > res.Traces[k][s][1]+1e-12 {
				t.Errorf("corner voltage above pad voltage at sample %d step %d", k, s)
			}
		}
	}
}

func TestLatinHypercubeReducesMeanError(t *testing.T) {
	sys := testGrid()
	// With LHS the sample mean of a near-linear response converges much
	// faster; compare the estimated mean against a large plain-MC
	// reference.
	ref, err := Run(sys, Options{Samples: 4000, Step: 1e-10, Steps: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(sys, Options{Samples: 60, Step: 1e-10, Steps: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := Run(sys, Options{Samples: 60, Step: 1e-10, Steps: 4, Seed: 5, LatinHypercube: true})
	if err != nil {
		t.Fatal(err)
	}
	node, step := 15, 4
	ePlain := math.Abs(small.Mean[step][node] - ref.Mean[step][node])
	eLHS := math.Abs(lhs.Mean[step][node] - ref.Mean[step][node])
	t.Logf("mean error: plain %.3g, lhs %.3g", ePlain, eLHS)
	if eLHS > ePlain*2 {
		t.Errorf("LHS error %g much worse than plain %g", eLHS, ePlain)
	}
}

func TestTrapezoidalMethod(t *testing.T) {
	sys := testGrid()
	res, err := Run(sys, Options{
		Samples: 20, Step: 5e-11, Steps: 10, Seed: 2, Method: transient.Trapezoidal,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.N; i++ {
		if res.Mean[10][i] <= 0 || res.Mean[10][i] > 1.2+1e-9 {
			t.Fatalf("unphysical TR mean %g", res.Mean[10][i])
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Samples: 0, Step: 1, Steps: 1}).Validate(16); err == nil {
		t.Error("zero samples accepted")
	}
	if err := (Options{Samples: 1, Step: 0, Steps: 1}).Validate(16); err == nil {
		t.Error("zero step accepted")
	}
	if err := (Options{Samples: 1, Step: 1, Steps: 1}).Validate(16); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestValidateRejectsBadTrackNodes(t *testing.T) {
	var tne *TrackNodeError
	err := (Options{Samples: 1, Step: 1, Steps: 1, TrackNodes: []int{0, 16}}).Validate(16)
	if !errors.As(err, &tne) {
		t.Fatalf("out-of-range node: err %T (%v), want *TrackNodeError", err, err)
	}
	if tne.Node != 16 || tne.N != 16 {
		t.Errorf("TrackNodeError = %+v", tne)
	}
	err = (Options{Samples: 1, Step: 1, Steps: 1, TrackNodes: []int{-1}}).Validate(0)
	if !errors.As(err, &tne) {
		t.Fatalf("negative node: err %T (%v), want *TrackNodeError", err, err)
	}
	// Run must surface the error instead of panicking mid-loop.
	sys := testGrid()
	if _, err := Run(sys, Options{Samples: 2, Step: 5e-11, Steps: 2, TrackNodes: []int{sys.N}}); err == nil {
		t.Error("Run accepted an out-of-range TrackNodes entry")
	}
}

// TestParallelDeterminism is the tentpole's acceptance criterion: the
// full result tensors must be bit-identical across worker counts.
func TestParallelDeterminism(t *testing.T) {
	sys := testGrid()
	base := Options{Samples: 61, Step: 5e-11, Steps: 8, Seed: 42, TrackNodes: []int{15}}
	var ref *Result
	for _, w := range []int{1, 2, 4} {
		opt := base
		opt.Workers = w
		res, err := Run(sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.SamplesRun != base.Samples {
			t.Fatalf("workers=%d: ran %d samples", w, res.SamplesRun)
		}
		if ref == nil {
			ref = res
			continue
		}
		for s := range ref.Mean {
			for i := range ref.Mean[s] {
				if res.Mean[s][i] != ref.Mean[s][i] {
					t.Fatalf("workers=%d: mean differs at step %d node %d: %.17g vs %.17g",
						w, s, i, res.Mean[s][i], ref.Mean[s][i])
				}
				if res.Variance[s][i] != ref.Variance[s][i] {
					t.Fatalf("workers=%d: variance differs at step %d node %d: %.17g vs %.17g",
						w, s, i, res.Variance[s][i], ref.Variance[s][i])
				}
			}
		}
		for k := range ref.Traces {
			for s := range ref.Traces[k] {
				for j := range ref.Traces[k][s] {
					if res.Traces[k][s][j] != ref.Traces[k][s][j] {
						t.Fatalf("workers=%d: trace differs at sample %d step %d", w, k, s)
					}
				}
			}
		}
	}
}
