// Package checkpoint persists periodic snapshots of long-running jobs
// so a crashed or deadline-killed process can resume mid-flight instead
// of restarting from scratch. It is the serving-layer analog of the
// numerics' escalation ladder: the numbers inside a snapshot are exact
// (JSON float64 encoding round-trips bit-exactly), so a resumed Monte
// Carlo run reproduces the uninterrupted result bit-for-bit.
//
// Durability model — crash-safe by construction, not by fsync:
//
//   - Save writes <key>.ckpt.tmp, then renames it onto <key>.ckpt.
//     The rename is atomic on POSIX filesystems, so <key>.ckpt is
//     always either the previous complete snapshot or the new complete
//     snapshot, never a torn mix.
//   - A crash between write and rename leaves a torn .tmp file; Load
//     never reads .tmp files and Open sweeps them, so the job resumes
//     from the previous snapshot.
//   - Every snapshot embeds a sha256 of its payload. A file that fails
//     the checksum or does not parse (truncation by a dying disk, a
//     partial write that somehow got renamed) is discarded as if no
//     snapshot existed — the job restarts cleanly, which is always
//     correct, merely slower.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Version is the on-disk envelope version; snapshots written by a
// different version are discarded rather than misinterpreted.
const Version = 1

// envelope is the on-disk form: a self-checking wrapper around an
// opaque payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"` // "mc", "transient", ...
	Key     string          `json:"key"`  // content address of the job
	Seq     int             `json:"seq"`  // monotonic snapshot number (e.g. samples done)
	Sum     string          `json:"sum"`  // sha256 hex of Payload bytes
	Payload json.RawMessage `json:"payload"`
}

// Info describes a loaded snapshot's envelope.
type Info struct {
	Kind string
	Key  string
	Seq  int
}

// Store manages one directory of snapshots, one file per job key.
type Store struct {
	dir string

	// BeforeRename, when non-nil, runs after the tmp file is written
	// and before it is renamed into place; returning an error aborts
	// the Save, leaving the torn tmp behind exactly as a crash at that
	// instant would. It exists for fault-injection tests (the service
	// chaos harness); production code leaves it nil.
	BeforeRename func(key string) error
}

// Open creates the directory if needed and sweeps stale tmp files left
// by crashed writers (their completed predecessors remain valid).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.ckpt.tmp"))
	for _, m := range matches {
		os.Remove(m)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the snapshot directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	// Keys are sha256 hex from the service layer, but sanitize anyway
	// so a hostile key cannot escape the directory.
	key = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, key+".ckpt")
}

// Save atomically replaces key's snapshot with payload's JSON encoding.
func (s *Store) Save(key, kind string, seq int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", key, err)
	}
	sum := sha256.Sum256(raw)
	env := envelope{
		Version: Version, Kind: kind, Key: key, Seq: seq,
		Sum: hex.EncodeToString(sum[:]), Payload: raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("checkpoint: encode envelope %s: %w", key, err)
	}
	final := s.path(key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", key, err)
	}
	if s.BeforeRename != nil {
		if err := s.BeforeRename(key); err != nil {
			return fmt.Errorf("checkpoint: %s: %w", key, err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: commit %s: %w", key, err)
	}
	return nil
}

// Load reads key's snapshot into payload. ok is false — with a nil
// error — when no usable snapshot exists: the file is absent, fails its
// checksum, carries a different envelope version or a different key, or
// does not parse. Corrupt files are removed so the next Load is cheap.
func (s *Store) Load(key string, payload any) (Info, bool, error) {
	final := s.path(key)
	data, err := os.ReadFile(final)
	if err != nil {
		if os.IsNotExist(err) {
			return Info{}, false, nil
		}
		return Info{}, false, fmt.Errorf("checkpoint: read %s: %w", key, err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		os.Remove(final)
		return Info{}, false, nil
	}
	sum := sha256.Sum256(env.Payload)
	if env.Version != Version || env.Key != key || env.Sum != hex.EncodeToString(sum[:]) {
		os.Remove(final)
		return Info{}, false, nil
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		os.Remove(final)
		return Info{}, false, nil
	}
	return Info{Kind: env.Kind, Key: env.Key, Seq: env.Seq}, true, nil
}

// Delete removes key's snapshot (and any torn tmp), called when a job
// completes fully and the snapshot has nothing left to protect.
func (s *Store) Delete(key string) {
	final := s.path(key)
	os.Remove(final)
	os.Remove(final + ".tmp")
}

// Len counts the resident snapshots (for tests and metrics).
func (s *Store) Len() int {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "*.ckpt"))
	return len(matches)
}
