package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type fakeState struct {
	Next int       `json:"next"`
	Vals []float64 `json:"vals"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := fakeState{Next: 64, Vals: []float64{1.25, -3e-17, 0.1}}
	if err := st.Save("job-key", "mc", 64, in); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	info, ok, err := st.Load("job-key", &out)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if info.Kind != "mc" || info.Seq != 64 || info.Key != "job-key" {
		t.Fatalf("bad info %+v", info)
	}
	if out.Next != in.Next || len(out.Vals) != len(in.Vals) || out.Vals[1] != in.Vals[1] {
		t.Fatalf("payload mismatch: %+v", out)
	}

	// A second Save replaces the first atomically.
	if err := st.Save("job-key", "mc", 128, fakeState{Next: 128}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Load("job-key", &out); !ok || out.Next != 128 {
		t.Fatalf("replacement not visible: ok=%v next=%d", ok, out.Next)
	}

	st.Delete("job-key")
	if _, ok, _ := st.Load("job-key", &out); ok {
		t.Fatal("snapshot survived Delete")
	}
}

func TestLoadMissing(t *testing.T) {
	st, _ := Open(t.TempDir())
	var out fakeState
	if _, ok, err := st.Load("nope", &out); ok || err != nil {
		t.Fatalf("missing snapshot: ok=%v err=%v", ok, err)
	}
}

// A crash between tmp write and rename (simulated via BeforeRename)
// must leave the previous snapshot intact and resumable.
func TestTornTmpPreservesPreviousSnapshot(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := st.Save("k", "mc", 32, fakeState{Next: 32}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected crash")
	st.BeforeRename = func(string) error { return boom }
	if err := st.Save("k", "mc", 64, fakeState{Next: 64}); !errors.Is(err, boom) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	st.BeforeRename = nil
	// The torn tmp file exists; Load must ignore it and serve seq 32.
	if _, err := os.Stat(filepath.Join(st.Dir(), "k.ckpt.tmp")); err != nil {
		t.Fatalf("expected torn tmp file: %v", err)
	}
	var out fakeState
	info, ok, err := st.Load("k", &out)
	if err != nil || !ok || info.Seq != 32 || out.Next != 32 {
		t.Fatalf("previous snapshot lost: ok=%v seq=%d next=%d err=%v", ok, info.Seq, out.Next, err)
	}
	// Reopening the directory sweeps the torn tmp; the snapshot stays.
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(st2.Dir(), "k.ckpt.tmp")); !os.IsNotExist(err) {
		t.Fatalf("torn tmp not swept: %v", err)
	}
	if _, ok, _ := st2.Load("k", &out); !ok || out.Next != 32 {
		t.Fatal("snapshot lost across reopen")
	}
}

// A truncated or bit-flipped final file fails its checksum and is
// discarded — the job restarts cleanly rather than resuming from
// garbage.
func TestCorruptSnapshotDiscarded(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := st.Save("k", "mc", 32, fakeState{Next: 32, Vals: make([]float64, 64)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "k.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation: not even valid JSON.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	if _, ok, err := st.Load("k", &out); ok || err != nil {
		t.Fatalf("truncated snapshot accepted: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("truncated snapshot not removed")
	}

	// Payload corruption that keeps the JSON valid: checksum rejects it.
	bad := []byte(string(data))
	for i := range bad {
		if bad[i] == '3' {
			bad[i] = '4'
		}
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Load("k", &out); ok {
		t.Fatal("checksum-corrupt snapshot accepted")
	}
}

func TestKeySanitized(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := st.Save("../evil/../../path", "mc", 1, fakeState{Next: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 file inside the store dir, got %d", len(entries))
	}
	var out fakeState
	if _, ok, _ := st.Load("../evil/../../path", &out); !ok || out.Next != 1 {
		t.Fatal("sanitized key did not round-trip")
	}
}
