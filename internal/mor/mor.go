// Package mor implements PRIMA-style model order reduction for RC power
// grids — the complexity-reduction route the paper's §5.2 points at
// ("computational complexity of OPERA can be significantly reduced by
// efficient techniques like model order reduction"): when only a few
// observation nodes matter (the top-layer voltages "are typically of no
// interest to the designer"), the grid (G, C, B) is projected onto a
// block Krylov subspace by a congruence transform, producing a reduced
// model of a few dozen states that matches the first q block moments of
// the port transfer function about an expansion point s₀ and preserves
// passivity (G, C SPD ⇒ Gr, Cr SPD).
package mor

import (
	"fmt"
	"math"

	"opera/internal/factor"
	"opera/internal/order"
	"opera/internal/sparse"
)

// Options configures a reduction.
type Options struct {
	// Ports lists the observed/driven nodes (columns of the incidence
	// matrix B).
	Ports []int
	// Inputs optionally adds arbitrary excitation-shape vectors (length
	// n) to the starting block, so distributed drives — pad injections,
	// block current patterns — are inside the Krylov subspace even
	// though they are not ports. Essential when the model is driven by
	// sources away from the observation ports.
	Inputs [][]float64
	// Moments is the number of block moments q to match (reduced size ≤
	// q·(len(Ports)+len(Inputs)), capped at n).
	Moments int
	// S0 is the real positive expansion point; 0 selects 1/(RC) of the
	// grid heuristically via the mean diagonal ratio.
	S0 float64
}

// Reduced is the projected model: Cr·dz/dt + Gr·z = Br·u(t), with port
// voltages y = Brᵀ·z. V maps reduced states back to node space.
type Reduced struct {
	K      int // reduced dimension
	NPorts int
	Gr, Cr [][]float64 // dense K×K
	Br     [][]float64 // K×NPorts
	V      [][]float64 // n×K (orthonormal columns)
}

// Reduce builds the reduced model of the SPD pair (g, c) with unit
// current injections at the ports.
func Reduce(g, c *sparse.Matrix, opts Options) (*Reduced, error) {
	n := g.Rows
	if g.Cols != n || c.Rows != n || c.Cols != n {
		return nil, fmt.Errorf("mor: G is %dx%d, C is %dx%d", g.Rows, g.Cols, c.Rows, c.Cols)
	}
	m := len(opts.Ports)
	if m == 0 {
		return nil, fmt.Errorf("mor: no ports")
	}
	for _, p := range opts.Ports {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("mor: port %d outside [0,%d)", p, n)
		}
	}
	q := opts.Moments
	if q < 1 {
		q = 2
	}
	s0 := opts.S0
	if s0 <= 0 {
		s0 = heuristicS0(g, c)
	}
	// Factor (G + s0·C) once.
	shifted := sparse.Add(1, g, s0, c)
	perm := order.NestedDissection(order.NewGraph(shifted), 0)
	fac, err := factor.Cholesky(shifted, perm)
	if err != nil {
		return nil, fmt.Errorf("mor: shifted factorization: %w", err)
	}
	// Block Arnoldi: R0 = A⁻¹·B, R_{j+1} = A⁻¹·C·R_j, orthonormalized by
	// modified Gram–Schmidt against all previous columns.
	var basis [][]float64 // columns, each length n
	addColumn := func(v []float64) bool {
		w := append([]float64(nil), v...)
		// Normalize first: propagated vectors scale with ‖C‖ (femto-
		// farads), so the deflation test must be relative, not absolute.
		nrm0 := math.Sqrt(dot(w, w))
		if nrm0 == 0 {
			return false
		}
		scale(w, 1/nrm0)
		for _, u := range basis {
			d := dot(u, w)
			axpy(w, -d, u)
		}
		// Re-orthogonalize once for robustness.
		for _, u := range basis {
			d := dot(u, w)
			axpy(w, -d, u)
		}
		nrm := math.Sqrt(dot(w, w))
		if nrm < 1e-10 {
			return false // deflated: direction already represented
		}
		scale(w, 1/nrm)
		basis = append(basis, w)
		return true
	}
	block := make([][]float64, 0, m+len(opts.Inputs))
	for _, p := range opts.Ports {
		e := make([]float64, n)
		e[p] = 1
		block = append(block, fac.Solve(e))
	}
	for i, in := range opts.Inputs {
		if len(in) != n {
			return nil, fmt.Errorf("mor: input %d has length %d, want %d", i, len(in), n)
		}
		block = append(block, fac.Solve(in))
	}
	for blk := 0; blk < q; blk++ {
		next := make([][]float64, 0, m)
		for _, v := range block {
			if addColumn(v) {
				next = append(next, basis[len(basis)-1])
			}
			if len(basis) >= n {
				break
			}
		}
		if len(basis) >= n || blk == q-1 || len(next) == 0 {
			break
		}
		// Propagate: v ← (G+s0C)⁻¹·C·v for the freshly added directions.
		cv := make([]float64, n)
		for i, v := range next {
			c.MulVec(cv, v)
			next[i] = fac.Solve(cv)
		}
		block = next
	}
	k := len(basis)
	if k == 0 {
		return nil, fmt.Errorf("mor: Krylov subspace collapsed")
	}
	red := &Reduced{K: k, NPorts: m, V: basis}
	red.Gr = project(g, basis)
	red.Cr = project(c, basis)
	red.Br = make([][]float64, k)
	for i := 0; i < k; i++ {
		red.Br[i] = make([]float64, m)
		for j, p := range opts.Ports {
			red.Br[i][j] = basis[i][p]
		}
	}
	return red, nil
}

// heuristicS0 picks 1/τ with τ the mean diagonal C/G ratio.
func heuristicS0(g, c *sparse.Matrix) float64 {
	gd, cd := g.Diag(), c.Diag()
	sum, cnt := 0.0, 0
	for i := range gd {
		if gd[i] > 0 && cd[i] > 0 {
			sum += cd[i] / gd[i]
			cnt++
		}
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return float64(cnt) / sum
}

// project computes Vᵀ·A·V densely.
func project(a *sparse.Matrix, v [][]float64) [][]float64 {
	n := a.Rows
	k := len(v)
	av := make([][]float64, k)
	tmp := make([]float64, n)
	for j := 0; j < k; j++ {
		a.MulVec(tmp, v[j])
		av[j] = append([]float64(nil), tmp...)
	}
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			out[i][j] = dot(v[i], av[j])
		}
	}
	return out
}

// PortTransfer evaluates the reduced transfer matrix H(s) = Brᵀ·(Gr +
// s·Cr)⁻¹·Br (m×m, dense).
func (r *Reduced) PortTransfer(s float64) ([][]float64, error) {
	k := r.K
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		for j := range a[i] {
			a[i][j] = r.Gr[i][j] + s*r.Cr[i][j]
		}
	}
	lu, piv, err := denseLU(a)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, r.NPorts)
	col := make([]float64, k)
	for j := 0; j < r.NPorts; j++ {
		for i := 0; i < k; i++ {
			col[i] = r.Br[i][j]
		}
		x := denseLUSolve(lu, piv, col)
		// Row i of H's column j: Brᵀ·x.
		for i := 0; i < r.NPorts; i++ {
			if out[i] == nil {
				out[i] = make([]float64, r.NPorts)
			}
			s := 0.0
			for l := 0; l < k; l++ {
				s += r.Br[l][i] * x[l]
			}
			out[i][j] = s
		}
	}
	return out, nil
}

// Transient runs backward Euler on the reduced model with port current
// inputs u(t) (length NPorts, drawn out of the ports: the RHS is
// −Br·u + any DC pad behavior already inside G). visit receives the
// port voltages at each step.
func (r *Reduced) Transient(step float64, steps int, u func(t float64, out []float64), visit func(stepIdx int, t float64, ports []float64)) error {
	if step <= 0 || steps < 1 {
		return fmt.Errorf("mor: bad stepping %g x %d", step, steps)
	}
	k := r.K
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		for j := range a[i] {
			a[i][j] = r.Gr[i][j] + r.Cr[i][j]/step
		}
	}
	lu, piv, err := denseLU(a)
	if err != nil {
		return err
	}
	glu, gpiv, err := denseLU(r.Gr)
	if err != nil {
		return err
	}
	um := make([]float64, r.NPorts)
	rhs := make([]float64, k)
	buildRHS := func(t float64) {
		u(t, um)
		for i := 0; i < k; i++ {
			s := 0.0
			for j := 0; j < r.NPorts; j++ {
				s += r.Br[i][j] * um[j]
			}
			rhs[i] = s
		}
	}
	ports := make([]float64, r.NPorts)
	emit := func(idx int, t float64, z []float64) {
		for j := 0; j < r.NPorts; j++ {
			s := 0.0
			for i := 0; i < k; i++ {
				s += r.Br[i][j] * z[i]
			}
			ports[j] = s
		}
		if visit != nil {
			visit(idx, t, ports)
		}
	}
	buildRHS(0)
	z := denseLUSolve(glu, gpiv, rhs)
	emit(0, 0, z)
	cz := make([]float64, k)
	for s := 1; s <= steps; s++ {
		t := float64(s) * step
		buildRHS(t)
		for i := 0; i < k; i++ {
			cz[i] = 0
			for j := 0; j < k; j++ {
				cz[i] += r.Cr[i][j] * z[j]
			}
		}
		for i := 0; i < k; i++ {
			rhs[i] += cz[i] / step
		}
		z = denseLUSolve(lu, piv, rhs)
		emit(s, t, z)
	}
	return nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// denseLU factors a dense square matrix with partial pivoting; a is
// copied, not modified.
func denseLU(a [][]float64) ([][]float64, []int, error) {
	n := len(a)
	lu := make([][]float64, n)
	for i := range lu {
		lu[i] = append([]float64(nil), a[i]...)
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		p := col
		for i := col + 1; i < n; i++ {
			if math.Abs(lu[i][col]) > math.Abs(lu[p][col]) {
				p = i
			}
		}
		if lu[p][col] == 0 {
			return nil, nil, fmt.Errorf("mor: singular reduced matrix at column %d", col)
		}
		lu[col], lu[p] = lu[p], lu[col]
		piv[col], piv[p] = piv[p], piv[col]
		d := lu[col][col]
		for i := col + 1; i < n; i++ {
			f := lu[i][col] / d
			lu[i][col] = f
			for j := col + 1; j < n; j++ {
				lu[i][j] -= f * lu[col][j]
			}
		}
	}
	return lu, piv, nil
}

func denseLUSolve(lu [][]float64, piv []int, b []float64) []float64 {
	n := len(lu)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[piv[i]]
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= lu[i][j] * x[j]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu[i][j] * x[j]
		}
		x[i] /= lu[i][i]
	}
	return x
}
