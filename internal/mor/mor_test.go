package mor

import (
	"math"
	"math/rand"
	"testing"

	"opera/internal/factor"
	"opera/internal/sparse"
)

// rcGrid builds an SPD RC mesh with a pad conductance at node 0.
func rcGrid(rows, cols int) (*sparse.Matrix, *sparse.Matrix) {
	n := rows * cols
	g := sparse.NewTriplet(n, n, 5*n)
	c := sparse.NewTriplet(n, n, n)
	id := func(r, cc int) int { return r*cols + cc }
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			v := id(r, cc)
			if cc+1 < cols {
				g.Add(v, v, 1)
				g.Add(id(r, cc+1), id(r, cc+1), 1)
				g.Add(v, id(r, cc+1), -1)
				g.Add(id(r, cc+1), v, -1)
			}
			if r+1 < rows {
				g.Add(v, v, 1)
				g.Add(id(r+1, cc), id(r+1, cc), 1)
				g.Add(v, id(r+1, cc), -1)
				g.Add(id(r+1, cc), v, -1)
			}
			c.Add(v, v, 1e-12)
		}
	}
	g.Add(0, 0, 10) // pad
	return g.Compile(), c.Compile()
}

func TestReduceBasisOrthonormal(t *testing.T) {
	g, c := rcGrid(8, 8)
	red, err := Reduce(g, c, Options{Ports: []int{63, 32}, Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < red.K; i++ {
		for j := 0; j <= i; j++ {
			d := dot(red.V[i], red.V[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-10 {
				t.Fatalf("V not orthonormal at (%d,%d): %g", i, j, d)
			}
		}
	}
	if red.K > 6 {
		t.Errorf("reduced size %d, expected <= moments*ports = 6", red.K)
	}
}

func TestReducedPreservesSPD(t *testing.T) {
	g, c := rcGrid(7, 9)
	red, err := Reduce(g, c, Options{Ports: []int{10, 40}, Moments: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Congruence transforms preserve definiteness: dense Cholesky of Gr
	// and Cr must succeed.
	for name, m := range map[string][][]float64{"Gr": red.Gr, "Cr": red.Cr} {
		if !denseSPD(m) {
			t.Errorf("%s is not positive definite", name)
		}
	}
}

func denseSPD(a [][]float64) bool {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = append([]float64(nil), a[i]...)
	}
	for j := 0; j < n; j++ {
		d := l[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		if d <= 0 {
			return false
		}
		d = math.Sqrt(d)
		l[j][j] = d
		for i := j + 1; i < n; i++ {
			s := l[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / d
		}
	}
	return true
}

// TestDCMomentMatching: the reduced model must reproduce the DC port
// resistance matrix H(0) = Bᵀ·G⁻¹·B exactly (0th moment at any s0 with
// q >= 1 matches about s0; at s=s0 the match is exact — we test at the
// expansion point).
func TestTransferMatchAtExpansionPoint(t *testing.T) {
	g, c := rcGrid(6, 6)
	ports := []int{35, 20}
	s0 := 1e11
	red, err := Reduce(g, c, Options{Ports: ports, Moments: 2, S0: s0})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := red.PortTransfer(s0)
	if err != nil {
		t.Fatal(err)
	}
	// Full model H(s0).
	shifted := sparse.Add(1, g, s0, c)
	fac, err := factor.Cholesky(shifted, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j, pj := range ports {
		e := make([]float64, g.Rows)
		e[pj] = 1
		x := fac.Solve(e)
		for i, pi := range ports {
			want := x[pi]
			if math.Abs(hr[i][j]-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("H(s0)[%d][%d] = %g, want %g", i, j, hr[i][j], want)
			}
		}
	}
}

// TestMomentMatchingDerivative: with q = 2 the first derivative of the
// transfer function about s0 must also match (finite difference).
func TestMomentMatchingDerivative(t *testing.T) {
	g, c := rcGrid(6, 6)
	ports := []int{35}
	s0 := 1e11
	red, err := Reduce(g, c, Options{Ports: ports, Moments: 3, S0: s0})
	if err != nil {
		t.Fatal(err)
	}
	h := func(s float64) float64 {
		shifted := sparse.Add(1, g, s, c)
		fac, err := factor.Cholesky(shifted, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := make([]float64, g.Rows)
		e[ports[0]] = 1
		return fac.Solve(e)[ports[0]]
	}
	hr := func(s float64) float64 {
		m, err := red.PortTransfer(s)
		if err != nil {
			t.Fatal(err)
		}
		return m[0][0]
	}
	ds := s0 * 1e-4
	dFull := (h(s0+ds) - h(s0-ds)) / (2 * ds)
	dRed := (hr(s0+ds) - hr(s0-ds)) / (2 * ds)
	if math.Abs(dFull-dRed) > 1e-4*math.Abs(dFull) {
		t.Errorf("derivative mismatch: full %g, reduced %g", dFull, dRed)
	}
}

func TestReducedTransientTracksFull(t *testing.T) {
	g, c := rcGrid(8, 8)
	port := 63
	red, err := Reduce(g, c, Options{Ports: []int{port}, Moments: 10, S0: 2e12})
	if err != nil {
		t.Fatal(err)
	}
	// Full reference: inject a ramped pulse at the port (moment-matched
	// models approximate band-limited inputs; a discontinuity would
	// excite frequencies far beyond the matched moments).
	iAt := func(tt float64) float64 {
		const rise, top, fall = 1e-11, 2.5e-11, 4e-11
		switch {
		case tt <= 0 || tt >= fall:
			return 0
		case tt < rise:
			return 1e-3 * tt / rise
		case tt < top:
			return 1e-3
		default:
			return 1e-3 * (fall - tt) / (fall - top)
		}
	}
	step := 1e-12
	steps := 80
	comp := sparse.Add(1, g, 1/step, c)
	fac, err := factor.Cholesky(comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	gfac, err := factor.Cholesky(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Rows
	u := make([]float64, n)
	u[port] = iAt(0)
	x := gfac.Solve(u)
	full := []float64{x[port]}
	cx := make([]float64, n)
	for s := 1; s <= steps; s++ {
		u[port] = iAt(float64(s) * step)
		c.MulVec(cx, x)
		b := make([]float64, n)
		for i := range b {
			b[i] = cx[i]/step + u[i]
		}
		fac.SolveTo(x, b)
		full = append(full, x[port])
	}
	var reduced []float64
	err = red.Transient(step, steps, func(tt float64, out []float64) {
		out[0] = iAt(tt)
	}, func(idx int, tt float64, ports []float64) {
		reduced = append(reduced, ports[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) != len(full) {
		t.Fatalf("lengths %d vs %d", len(reduced), len(full))
	}
	maxV := 0.0
	for _, v := range full {
		if math.Abs(v) > maxV {
			maxV = math.Abs(v)
		}
	}
	for i := range full {
		if math.Abs(full[i]-reduced[i]) > 0.03*maxV {
			t.Fatalf("step %d: full %g vs reduced %g (max %g)", i, full[i], reduced[i], maxV)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	g, c := rcGrid(3, 3)
	if _, err := Reduce(g, c, Options{}); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := Reduce(g, c, Options{Ports: []int{99}}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestDenseLURandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += 3
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, piv, err := denseLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x := denseLUSolve(lu, piv, b)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-9 {
				t.Fatalf("residual %g", s-b[i])
			}
		}
	}
}
