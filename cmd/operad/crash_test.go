package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/service"
)

// buildOperad compiles the daemon once per test binary.
func buildOperad(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "operad")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon wraps one operad process under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches operad and parses the listen address from its
// structured "operad.serving" log line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-log-level", "info"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Bytes()
			if bytes.Contains(line, []byte("operad.serving")) {
				var ev struct {
					Addr string `json:"addr"`
				}
				if json.Unmarshal(line, &ev) == nil && ev.Addr != "" {
					select {
					case addrCh <- ev.Addr:
					default:
					}
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("operad never logged operad.serving")
	}
	return d
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func httpJSON(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// normalize strips volatile result fields (trace IDs differ across
// submissions, elapsed time across runs) so byte comparison tests the
// numerics.
func normalize(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode result: %v\n%s", err, data)
	}
	delete(m, "trace_id")
	delete(m, "elapsed_ms")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mcJob builds a Monte Carlo request slow enough to SIGKILL mid-flight
// but deterministic, so the resumed run must match a fresh one.
func mcJob(t *testing.T, seed int64, samples int) []byte {
	t.Helper()
	spec := grid.DefaultSpec(64, seed)
	b, err := json.Marshal(service.Request{
		Grid: &spec, Analysis: service.KindMC,
		Samples: samples, Steps: 4, Step: 1e-10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrashResumeByteIdentical SIGKILLs operad mid-MC-job and
// restarts it on the same journal and checkpoint directory. The
// replayed job must resume from its snapshot and produce a result
// byte-identical (modulo trace/timing fields) to an uninterrupted run
// of the same request on a pristine daemon.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildOperad(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal")
	ckpt := filepath.Join(dir, "ckpt")
	args := []string{"-journal", journal, "-checkpoint-dir", ckpt, "-checkpoint-every", "64", "-jobs", "1"}

	// Reference result from an uninterrupted daemon on pristine state.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, "-journal", filepath.Join(refDir, "journal"), "-checkpoint-dir", filepath.Join(refDir, "ckpt"), "-jobs", "1")
	code, body := httpJSON(t, "POST", ref.url("/v1/jobs"), mcJob(t, 5, 20000))
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &sub)
	want := normalize(t, waitResult(t, ref, sub.ID))
	ref.cmd.Process.Signal(syscall.SIGTERM)
	ref.cmd.Wait()

	// Crash run: submit, wait for the first checkpoint to land, SIGKILL.
	d1 := startDaemon(t, bin, args...)
	code, body = httpJSON(t, "POST", d1.url("/v1/jobs"), mcJob(t, 5, 20000))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub1 struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &sub1)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if entries, err := os.ReadDir(ckpt); err == nil {
			found := false
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".ckpt") {
					found = true
				}
			}
			if found {
				break
			}
		}
		if time.Now().After(deadline) {
			st, js := httpJSON(t, "GET", d1.url("/v1/jobs/"+sub1.ID), nil)
			t.Fatalf("no checkpoint before deadline; job status %d %s", st, js)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Restart on the same state: the journal replays the job under its
	// original ID and the solve resumes from the snapshot.
	d2 := startDaemon(t, bin, args...)
	got := normalize(t, waitResult(t, d2, sub1.ID))
	if got != want {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.cmd.Wait()
}

// waitResult polls a job to completion and fetches its result bytes.
func waitResult(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, body := httpJSON(t, "GET", d.url("/v1/jobs/"+id), nil)
		if code == http.StatusOK {
			var st struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			json.Unmarshal(body, &st)
			switch st.State {
			case "done":
				code, res := httpJSON(t, "GET", d.url("/v1/jobs/"+id+"/result"), nil)
				if code != http.StatusOK {
					t.Fatalf("result fetch: %d %s", code, res)
				}
				return res
			case "failed", "canceled":
				t.Fatalf("job %s terminal state %s: %s", id, st.State, st.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTornCheckpointOnDiskIgnored plants a torn tmp snapshot and a
// checksum-corrupt final snapshot in the checkpoint directory; the
// daemon must start, sweep the tmp, discard the corrupt file, and
// solve the job from scratch — same bytes as a clean run.
func TestTornCheckpointOnDiskIgnored(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildOperad(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	// A torn tmp write and a corrupt final file under plausible names.
	if err := os.WriteFile(filepath.Join(ckpt, "deadbeef.ckpt.tmp"), []byte(`{"version":1,"kind":"mc"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckpt, "feedface.ckpt"), []byte(`{"version":1,"kind":"mc","key":"feedface","seq":8,"sum":"0000","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, bin, "-checkpoint-dir", ckpt, "-jobs", "1")
	if _, err := os.Stat(filepath.Join(ckpt, "deadbeef.ckpt.tmp")); !os.IsNotExist(err) {
		t.Fatal("torn tmp snapshot not swept at startup")
	}
	code, body := httpJSON(t, "POST", d.url("/v1/jobs"), mcJob(t, 9, 200))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &sub)
	res := waitResult(t, d, sub.ID)
	var jr struct {
		SamplesRun int  `json:"samples_run"`
		Degraded   bool `json:"degraded"`
	}
	if err := json.Unmarshal(res, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.SamplesRun != 200 || jr.Degraded {
		t.Fatalf("job did not run cleanly from scratch: samples_run=%d degraded=%v", jr.SamplesRun, jr.Degraded)
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	d.cmd.Wait()
}
