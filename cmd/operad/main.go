// Command operad is the long-running OPERA analysis service: it accepts
// analysis jobs over HTTP/JSON, runs them through a bounded priority
// queue with per-job deadlines and cooperative cancellation, and serves
// results from a content-addressed cache so identical requests cost one
// solve.
//
// Usage:
//
//	operad -addr :9130 -jobs 2 -queue 64 -cache-mb 256
//
// Submit with curl or `opera -remote`:
//
//	curl -s localhost:9130/v1/jobs -d '{"grid":{"rows":20,"cols":20,...}}'
//	opera -remote localhost:9130 -nodes 1000 -order 2
//
// SIGINT/SIGTERM drains: readiness flips to 503 immediately, in-flight
// jobs get -drain-timeout to finish, stragglers are canceled at their
// next step boundary, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opera/internal/factor"
	"opera/internal/netlist"
	"opera/internal/obs"
	"opera/internal/obs/logx"
	"opera/internal/order"
	"opera/internal/service"
	"opera/internal/sparse"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9130", "HTTP listen address")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		jobs         = flag.Int("jobs", 2, "jobs executing concurrently")
		workers      = flag.Int("workers", 0, "solver workers per job; 0 = GOMAXPROCS split across jobs")
		cacheMB      = flag.Int64("cache-mb", 256, "result cache budget in MiB; 0 disables")
		journalPath  = flag.String("journal", "", "JSON-lines job journal; unfinished jobs re-run on restart")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline; 0 = none")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight jobs on shutdown")
		maxBytes     = flag.Int64("max-netlist-bytes", 0, "max inline netlist size; 0 = default (256 MiB)")
		maxNodes     = flag.Int("max-nodes", 0, "max circuit nodes; 0 = default (20M)")
		withTrace    = flag.Bool("trace", false, "attach per-job span trees and metrics to results")
		logLevel     = flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
		flightJobs   = flag.Int("flight", 32, "flight-recorder entries per view (recent/slowest/failed); 0 disables /debug/flight")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for periodic Monte Carlo snapshots; jobs resume from them after a crash")
		ckptEvery    = flag.Int("checkpoint-every", 64, "snapshot cadence in samples (rounded up to the solver's chunk grid)")
		stallTimeout = flag.Duration("stall-timeout", 0, "kill a job whose progress counter stalls this long; 0 disables the watchdog")
		sloProfile   = flag.Duration("slo-profile-after", 0, "capture a pprof heap+CPU snapshot of any job still running after this long, served at /debug/profiles; 0 disables")
		peers        = flag.String("peers", "", "comma-separated base URLs of the other cluster shards; enables peer cache peeking and drain handoff")
		selfURL      = flag.String("self", "", "this shard's own base URL, filtered from -peers (required when -peers lists it)")
		peekTimeout  = flag.Duration("peek-timeout", 0, "budget for one peer cache peek; 0 = default (150ms)")
		spanRingKB   = flag.Int64("span-ring-kb", 1024, "per-process span retention for /debug/spans cross-shard trace stitching, in KiB; 0 disables")
	)
	flag.Parse()

	// Structured JSON logs go to stderr (stdout stays free for shells
	// piping curl/opera output); -log-level off silences them while the
	// flight recorder keeps collecting per-job tails.
	var logger *slog.Logger
	if *logLevel != "off" {
		level, err := logx.ParseLevel(*logLevel)
		if err != nil {
			fatal("operad: %v", err)
		}
		logger = logx.New(os.Stderr, level)
	}

	limits := netlist.DefaultLimits()
	if *maxBytes > 0 {
		limits.MaxBytes = *maxBytes
	}
	if *maxNodes > 0 {
		limits.MaxNodes = *maxNodes
	}
	reg := obs.NewRegistry()
	sparse.SetMetrics(reg)
	order.SetMetrics(reg)
	factor.SetMetrics(reg)
	// Runtime health (heap, GC pauses, scheduler latency, goroutines)
	// lands on the same registry, so /metrics answers "is the process
	// sick" alongside "is the solver sick".
	stopSampler := obs.StartRuntimeSampler(reg, time.Second)
	defer stopSampler()

	srv, err := service.New(service.Options{
		QueueDepth:      *queueDepth,
		ConcurrentJobs:  *jobs,
		SolverWorkers:   *workers,
		CacheBytes:      *cacheMB << 20,
		Limits:          limits,
		DefaultTimeout:  *jobTimeout,
		JournalPath:     *journalPath,
		Registry:        reg,
		CollectTrace:    *withTrace,
		Logger:          logger,
		FlightJobs:      *flightJobs,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		StallTimeout:    *stallTimeout,
		SLOProfileAfter: *sloProfile,
		PeekTimeout:     *peekTimeout,
		SpanRingBytes:   *spanRingKB << 10,
	})
	if err != nil {
		fatal("operad: %v", err)
	}
	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		srv.SetPeers(*selfURL, peerList)
		if logger != nil {
			logger.Info("operad.peers", "self", *selfURL, "peers", strings.Join(srv.Peers(), ","))
		}
	}
	hs, err := obs.StartHTTP(*addr, srv.Handler())
	if err != nil {
		fatal("operad: %v", err)
	}
	if logger != nil {
		// One build-identity line at startup: the same facts /debug/build
		// serves, so "which commit is this process" survives in the logs
		// even after the process is gone.
		bi := obs.ReadBuild()
		logger.Info("operad.build",
			"go", bi.GoVersion, "revision", bi.Revision, "dirty", bi.Dirty,
			"module", bi.Path, "platform", bi.GOOS+"/"+bi.GOARCH)
		logger.Info("operad.serving",
			"addr", hs.Addr(), "queue", *queueDepth, "jobs", *jobs,
			"cache_mb", *cacheMB, "flight", *flightJobs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	// Drain: readiness flips inside Shutdown before it blocks, and the
	// HTTP server keeps answering status polls until the queue is empty.
	if logger != nil {
		logger.Info("operad.draining", "grace", drainTimeout.String())
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		if logger != nil {
			logger.Warn("operad.drain_deadline", logx.KeyError, err.Error())
		}
	}
	// Stop the runtime sampler before the registry's last readers go
	// away, not at process exit: the deferred call alone would leave the
	// sampler goroutine touching the registry while the listener closes.
	stopSampler()
	closeCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Close(closeCtx); err != nil {
		fatal("operad: closing listener: %v", err)
	}
	if logger != nil {
		logger.Info("operad.stopped")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
