// Command mc runs the Monte Carlo baseline on a power grid: per-sample
// parameter draws, refactorization and transient solve, with streaming
// node statistics — the reference OPERA is compared against in Table 1.
//
// Usage:
//
//	mc -netlist grid.sp -samples 1000
//	mc -nodes 20000 -samples 200 -lhs
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/montecarlo"
	"opera/internal/netlist"
)

func main() {
	var (
		netPath = flag.String("netlist", "", "input netlist (OPERA text format); empty = generate")
		nodes   = flag.Int("nodes", 10000, "node count when generating")
		seed    = flag.Int64("seed", 1, "seed")
		samples = flag.Int("samples", 1000, "Monte Carlo samples")
		step    = flag.Float64("step", 1e-10, "time step (s)")
		steps   = flag.Int("steps", 20, "number of time steps")
		lhs     = flag.Bool("lhs", false, "use Latin hypercube sampling")
	)
	flag.Parse()

	var nl *netlist.Netlist
	var err error
	if *netPath == "" {
		nl, err = grid.Build(grid.DefaultSpec(*nodes, *seed))
	} else {
		var f *os.File
		f, err = os.Open(*netPath)
		if err == nil {
			defer f.Close()
			nl, err = netlist.Read(f)
		}
	}
	if err != nil {
		fatal("mc: %v", err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		fatal("mc: %v", err)
	}
	fmt.Printf("mc: %s, %d samples, %d steps of %.3g s\n", nl.Stats(), *samples, *steps, *step)
	start := time.Now()
	res, err := montecarlo.Run(sys, montecarlo.Options{
		Samples: *samples, Step: *step, Steps: *steps,
		Seed: *seed, LatinHypercube: *lhs,
	})
	if err != nil {
		fatal("mc: %v", err)
	}
	elapsed := time.Since(start)
	// Worst mean drop and its spread.
	worstNode, worstStep, worstDrop := 0, 0, 0.0
	for s := range res.Mean {
		for i, v := range res.Mean[s] {
			if d := sys.VDD - v; d > worstDrop {
				worstDrop = d
				worstNode, worstStep = i, s
			}
		}
	}
	sd := math.Sqrt(res.Variance[worstStep][worstNode])
	fmt.Printf("mc: %d samples in %.2fs (%.1f ms/sample)\n",
		res.SamplesRun, elapsed.Seconds(), 1000*elapsed.Seconds()/float64(res.SamplesRun))
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, σ %.4g V, ±3σ = ±%.0f%% of the drop\n",
		worstNode, worstStep, 100*worstDrop/sys.VDD, sd, 300*sd/worstDrop)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
