// Command mc runs the Monte Carlo baseline on a power grid: per-sample
// parameter draws, refactorization and transient solve, with streaming
// node statistics — the reference OPERA is compared against in Table 1.
//
// Usage:
//
//	mc -netlist grid.sp -samples 1000
//	mc -nodes 20000 -samples 200 -lhs
//	mc -nodes 20000 -samples 200 -trace -trace-out mc-trace.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"opera/internal/factor"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/montecarlo"
	"opera/internal/netlist"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/sparse"
)

func main() {
	var (
		netPath  = flag.String("netlist", "", "input netlist (OPERA text format); empty = generate")
		nodes    = flag.Int("nodes", 10000, "node count when generating")
		seed     = flag.Int64("seed", 1, "seed")
		samples  = flag.Int("samples", 1000, "Monte Carlo samples")
		step     = flag.Float64("step", 1e-10, "time step (s)")
		steps    = flag.Int("steps", 20, "number of time steps")
		lhs      = flag.Bool("lhs", false, "use Latin hypercube sampling")
		trace    = flag.Bool("trace", false, "print the per-phase trace and metrics table after the run")
		traceOut = flag.String("trace-out", "", "write the trace + metrics as JSON to this file")
		pprof    = flag.String("pprof-addr", "", "serve net/http/pprof, expvar and live trace/metrics on this address (e.g. localhost:6060)")
		workers  = flag.Int("workers", 0, "sampling worker pool size; 0 = GOMAXPROCS (results are identical for any value)")
	)
	flag.Parse()

	tr := newTracer(*trace, *traceOut, *pprof)
	defer exportTrace(tr, *trace, *traceOut)

	spA := tr.Start("assemble")
	var nl *netlist.Netlist
	var err error
	if *netPath == "" {
		nl, err = grid.Build(grid.DefaultSpec(*nodes, *seed))
	} else {
		var f *os.File
		f, err = os.Open(*netPath)
		if err == nil {
			defer f.Close()
			nl, err = netlist.Read(f)
		}
	}
	if err != nil {
		fatal("mc: %v", err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		fatal("mc: %v", err)
	}
	spA.SetAttrs(obs.Int("n", sys.N))
	spA.End()
	fmt.Printf("mc: %s, %d samples, %d steps of %.3g s\n", nl.Stats(), *samples, *steps, *step)
	start := time.Now()
	res, err := montecarlo.Run(sys, montecarlo.Options{
		Samples: *samples, Step: *step, Steps: *steps,
		Seed: *seed, LatinHypercube: *lhs, Workers: *workers, Obs: tr,
	})
	if err != nil {
		fatal("mc: %v", err)
	}
	elapsed := time.Since(start)
	// Worst mean drop and its spread.
	worstNode, worstStep, worstDrop := 0, 0, 0.0
	for s := range res.Mean {
		for i, v := range res.Mean[s] {
			if d := sys.VDD - v; d > worstDrop {
				worstDrop = d
				worstNode, worstStep = i, s
			}
		}
	}
	sd := math.Sqrt(res.Variance[worstStep][worstNode])
	fmt.Printf("mc: %d samples in %.2fs (%.1f ms/sample)\n",
		res.SamplesRun, elapsed.Seconds(), 1000*elapsed.Seconds()/float64(res.SamplesRun))
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, σ %.4g V, ±3σ = ±%.0f%% of the drop\n",
		worstNode, worstStep, 100*worstDrop/sys.VDD, sd, 300*sd/worstDrop)
}

// newTracer builds the run tracer when any observability flag is set,
// installing the shared solver metrics so the MC baseline reports from
// the same instrumentation source as cmd/opera.
func newTracer(trace bool, traceOut, pprofAddr string) *obs.Tracer {
	if !trace && traceOut == "" && pprofAddr == "" {
		return nil
	}
	tr := obs.New("mc.run")
	reg := tr.Registry()
	sparse.SetMetrics(reg)
	order.SetMetrics(reg)
	factor.SetMetrics(reg)
	if pprofAddr != "" {
		if _, err := obs.ServeDebug(pprofAddr, tr); err != nil {
			fatal("mc: pprof server: %v", err)
		}
		fmt.Printf("mc: debug server on http://%s/debug/pprof/ (also /debug/vars, /metrics, /trace)\n", pprofAddr)
	}
	return tr
}

// exportTrace finishes the trace and emits the requested exports.
func exportTrace(tr *obs.Tracer, trace bool, traceOut string) {
	if tr == nil {
		return
	}
	tr.Finish()
	if trace {
		if err := tr.WriteText(os.Stdout); err != nil {
			fatal("mc: writing trace: %v", err)
		}
	}
	if traceOut != "" {
		if err := tr.WriteJSONFile(traceOut); err != nil {
			fatal("mc: writing %s: %v", traceOut, err)
		}
		fmt.Printf("mc: wrote trace to %s\n", traceOut)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
