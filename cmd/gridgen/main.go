// Command gridgen synthesizes a power-grid netlist in the OPERA text
// format: a multi-layer RC mesh with supply pads, load capacitances and
// calibrated functional-block transient currents (see internal/grid).
//
// Usage:
//
//	gridgen -nodes 20000 -seed 7 -o grid.sp
//	gridgen -nodes 5000 -regions 4 -peakdrop 0.08
package main

import (
	"flag"
	"fmt"
	"os"

	"opera/internal/grid"
	"opera/internal/netlist"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10000, "approximate node count")
		seed     = flag.Int64("seed", 1, "generator seed")
		regions  = flag.Int("regions", 2, "intra-die regions per axis (for the §5.1 special case)")
		peakDrop = flag.Float64("peakdrop", 0.08, "target peak nominal IR drop as a fraction of VDD")
		vdd      = flag.Float64("vdd", 1.2, "supply voltage")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	spec := grid.DefaultSpec(*nodes, *seed)
	spec.Regions = *regions
	spec.PeakDropFrac = *peakDrop
	spec.VDD = *vdd
	nl, err := grid.Build(spec)
	if err != nil {
		fatal("gridgen: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("gridgen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := netlist.Write(w, nl); err != nil {
		fatal("gridgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "gridgen: wrote %s\n", nl.Stats())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
