// Command operag is the stateless operad cluster router: it fronts a
// ring of operad shards, consistent-hashing each request's canonical
// content key so identical requests land on the same shard — cache
// hits and in-flight coalescing work cluster-wide, from any entry
// point. It also serves the bulk sweep API, fanning a corner × load ×
// seed matrix across the ring and streaming results back as JSON
// lines.
//
// Usage:
//
//	operag -addr :9140 -shards localhost:9130,localhost:9131
//
// Submit through the router exactly as through a single operad:
//
//	curl -s localhost:9140/v1/jobs -d '{"grid":{"rows":20,"cols":20,...}}'
//	opera -remote localhost:9140 -nodes 1000 -order 2
//
// The router holds no state: SIGINT/SIGTERM closes the listener and
// exits 0. In-flight jobs keep running on their shards; a client polls
// them through another router instance (job IDs encode the shard).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opera/internal/cluster"
	"opera/internal/obs"
	"opera/internal/obs/logx"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9140", "HTTP listen address")
		shards   = flag.String("shards", "", "comma-separated operad shard addresses (required)")
		replicas = flag.Int("replicas", 0, "virtual nodes per shard on the hash ring; 0 = default (64), must match the shards' -peers rings")
		workers  = flag.Int("sweep-workers", 0, "concurrent cells per sweep stream; 0 = 4 per shard")
		scrapeTO = flag.Duration("scrape-timeout", 0, "per-shard budget for /metrics/cluster and /debug/trace scrapes; 0 = default (2s)")
		logLevel = flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	)
	flag.Parse()

	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		fatal("operag: -shards is required (comma-separated operad addresses)")
	}

	var logger *slog.Logger
	if *logLevel != "off" {
		level, err := logx.ParseLevel(*logLevel)
		if err != nil {
			fatal("operag: %v", err)
		}
		logger = logx.New(os.Stderr, level)
	}

	reg := obs.NewRegistry()
	stopSampler := obs.StartRuntimeSampler(reg, time.Second)
	defer stopSampler()

	router, err := cluster.New(cluster.Options{
		Shards:        shardList,
		Replicas:      *replicas,
		SweepWorkers:  *workers,
		ScrapeTimeout: *scrapeTO,
		Registry:      reg,
		Logger:        logger,
	})
	if err != nil {
		fatal("operag: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("operag: %v", err)
	}
	// No WriteTimeout: sweep streams legitimately run for as long as
	// the matrix takes to solve; the per-cell job deadlines on the
	// shards bound the work.
	hs := &http.Server{
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(ln)

	if logger != nil {
		bi := obs.ReadBuild()
		logger.Info("operag.build",
			"go", bi.GoVersion, "revision", bi.Revision, "dirty", bi.Dirty,
			"module", bi.Path, "platform", bi.GOOS+"/"+bi.GOARCH)
		logger.Info("operag.serving",
			"addr", ln.Addr().String(), "shards", strings.Join(router.Shards(), ","))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(closeCtx); err != nil {
		hs.Close()
	}
	// Stop the sampler once the listener is down, so no scrape can race
	// a half-stopped registry (the defer above stays as a safety net —
	// the stop is idempotent).
	stopSampler()
	if logger != nil {
		logger.Info("operag.stopped")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
