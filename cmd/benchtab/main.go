// Command benchtab regenerates the paper's evaluation artifacts end to
// end: Table 1 (grid-by-grid OPERA vs Monte Carlo accuracy and
// speedup), Figures 1–2 (voltage-drop distributions), the §5.1 special
// case and the ablation studies.
//
// Usage:
//
//	benchtab -exp table1
//	benchtab -exp table1 -full        # paper-scale sizes and 1000 samples
//	benchtab -exp fig1
//	benchtab -exp fig2
//	benchtab -exp special
//	benchtab -exp ordersweep
//	benchtab -exp solver
//	benchtab -exp ordering
//	benchtab -exp all
//
// With -trace it switches to report mode: it reads a JSON trace written
// by `opera -trace-out` (or `mc -trace-out`) and renders a markdown
// per-phase timing table plus a metrics summary.
//
//	opera -nodes 20000 -trace-out trace.json && benchtab -trace trace.json
//
// With -flight it renders a flight-recorder dump fetched from a running
// operad as markdown: the recent / slowest / failed views with per-job
// timing splits and trace IDs.
//
//	curl -s localhost:9130/debug/flight > flight.json && benchtab -flight flight.json
//
// With -suite it runs the standardized perf-scenario suite and emits
// the machine-readable BenchReport; -compare diffs two reports under
// the per-metric regression thresholds and exits 1 on soft (warn-band)
// and 2 on hard regressions — the CI perf gate:
//
//	benchtab -suite quick -json new.json
//	benchtab -compare BENCH_seed.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"opera/internal/experiments"
	"opera/internal/galerkin"
	"opera/internal/obs"
	"opera/internal/obs/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table1, fig1, fig2, special, ordersweep, solver, mor, ordering, all")
		full        = flag.Bool("full", false, "paper-scale configuration (slow)")
		seed        = flag.Int64("seed", 2005, "experiment seed")
		tracePath   = flag.String("trace", "", "render a markdown timing table from this JSON trace file and exit")
		flightPath  = flag.String("flight", "", "render a markdown report from this /debug/flight JSON dump and exit")
		workers     = flag.Int("workers", 0, "solver worker cap: threads into every suite row's worker pools and caps GOMAXPROCS for experiment runs; 0 leaves both alone (results are identical for any value)")
		suite       = flag.String("suite", "", "run the perf-scenario suite (quick or default) instead of experiments")
		jsonOut     = flag.String("json", "", "write the suite's BenchReport JSON to this file (- or empty with -suite: stdout)")
		comparePath = flag.String("compare", "", "baseline BenchReport; compares against the report named by the positional argument and exits 0/1/2 (clean/warn/fail)")
		traceOut    = flag.String("trace-out", "", "with -suite: write the shared suite trace (one span per scenario row) as JSON to this file")
		kernelGate  = flag.Bool("kernel-gate", false, "with -suite: fail (exit 2) if any supernodal factor row is slower than its scalar mate")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *tracePath != "" {
		if err := writeTraceTable(os.Stdout, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *flightPath != "" {
		if err := writeFlightTable(os.Stdout, *flightPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *comparePath != "" {
		os.Exit(runCompare(*comparePath, flag.Arg(0)))
	}
	if *suite != "" || *jsonOut != "" {
		if err := runSuite(*suite, *jsonOut, *traceOut, *workers, *kernelGate); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", func() error {
		cfg := experiments.DefaultTable1()
		if *full {
			cfg = experiments.FullTable1()
		}
		cfg.Seed = *seed
		_, err := experiments.WriteTable1(os.Stdout, cfg, logf)
		return err
	})
	run("fig1", func() error {
		cfg := experiments.DefaultFigure(0)
		if *full {
			cfg = experiments.FullFigure(0)
		}
		_, err := experiments.WriteFigure(os.Stdout, cfg, "Figure 1")
		return err
	})
	run("fig2", func() error {
		cfg := experiments.DefaultFigure(1)
		if *full {
			cfg = experiments.FullFigure(1)
		}
		_, err := experiments.WriteFigure(os.Stdout, cfg, "Figure 2")
		return err
	})
	run("special", func() error {
		nodes, samples := 2600, 1000
		if *full {
			nodes, samples = 19181, 1000
		}
		_, err := experiments.WriteSpecialCase(os.Stdout, nodes, 2, 3, samples, 0.6, *seed)
		return err
	})
	run("ordersweep", func() error {
		nodes, samples := 1600, 800
		if *full {
			nodes, samples = 19181, 2000
		}
		rows, err := experiments.RunOrderSweep(nodes, 3, samples, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("Expansion-order sweep (%d nodes, %d-sample MC reference)\n\n", nodes, samples)
		return experiments.FormatOrderSweep(rows).Write(os.Stdout)
	})
	run("solver", func() error {
		nodes := 1600
		if *full {
			nodes = 19181
		}
		rows, err := experiments.RunSolverAblation(nodes, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("Solver-path ablation (§5.2), %d nodes\n\n", nodes)
		return experiments.FormatSolverAblation(rows).Write(os.Stdout)
	})
	run("mor", func() error {
		nodes := 2600
		if *full {
			nodes = 19181
		}
		row, err := experiments.RunMORAblation(nodes, 12, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("MOR ablation (§5.2), %d nodes\n\n", nodes)
		return experiments.FormatMORAblation(row).Write(os.Stdout)
	})
	run("ordering", func() error {
		nodes := 1600
		if *full {
			nodes = 19181
		}
		rows, err := experiments.RunOrderingAblation(nodes, *seed, []galerkin.Ordering{
			galerkin.OrderND, galerkin.OrderRCM, galerkin.OrderMD, galerkin.OrderAMD, galerkin.OrderNatural,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Augmented-system ordering ablation (%d nodes)\n\n", nodes)
		return experiments.FormatOrderingAblation(rows).Write(os.Stdout)
	})
}

// runSuite executes the named perf-scenario suite. One tracer is
// shared across every row (so -trace-out yields a single dump spanning
// the whole suite) and the -workers cap threads into each scenario's
// solver pools, not just GOMAXPROCS.
func runSuite(name, jsonOut, traceOut string, workers int, kernelGate bool) error {
	if name == "" {
		name = "quick"
	}
	scenarios, err := bench.Suite(name)
	if err != nil {
		return err
	}
	tr := obs.New("benchtab.suite")
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := bench.Run(name, scenarios, bench.RunOptions{
		Workers: workers, Tracer: tr, Logf: logf,
	})
	if err != nil {
		return err
	}
	tr.Finish()
	if traceOut != "" {
		if err := tr.WriteJSONFile(traceOut); err != nil {
			return err
		}
	}
	if jsonOut == "" || jsonOut == "-" {
		if err := rep.Encode(os.Stdout); err != nil {
			return err
		}
	} else if err := rep.WriteFile(jsonOut); err != nil {
		return err
	}
	if kernelGate {
		if fails := bench.KernelGate(rep, 0); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, f)
			}
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "kernel gate: supernodal >= scalar on every paired factor row")
	}
	return nil
}

// runCompare diffs a new report against the baseline and returns the
// gate's exit code: 0 clean, 1 soft regressions, 2 hard regressions or
// a missing/unreadable report.
func runCompare(basePath, newPath string) int {
	if newPath == "" {
		fmt.Fprintln(os.Stderr, "benchtab: -compare needs the new report as positional argument: benchtab -compare base.json new.json")
		return 2
	}
	base, err := bench.ReadReportFile(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		return 2
	}
	cur, err := bench.ReadReportFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		return 2
	}
	c := bench.Compare(base, cur, nil)
	fmt.Printf("## Perf comparison — %s vs %s\n\n", basePath, newPath)
	if base.Workers != cur.Workers || base.GOARCH != cur.GOARCH {
		fmt.Printf("> header mismatch: base %s/%s w=%d, new %s/%s w=%d — wall deltas are not meaningful\n\n",
			base.GOOS, base.GOARCH, base.Workers, cur.GOOS, cur.GOARCH, cur.Workers)
	}
	if err := c.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		return 2
	}
	return c.ExitCode()
}

// writeTraceTable renders a trace dump (as written by -trace-out) as a
// markdown per-phase timing table followed by a metrics summary.
func writeTraceTable(w *os.File, path string) error {
	d, err := obs.ReadDumpFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Phase timing — %s\n\n", d.Name)
	fmt.Fprintf(w, "Total %.2f ms", d.TotalMS)
	if d.AllocBytes > 0 {
		fmt.Fprintf(w, ", %s allocated", fmtBytes(d.AllocBytes))
	}
	fmt.Fprintf(w, ".\n\n")
	fmt.Fprintln(w, "| phase | ms | % of total | alloc | attrs |")
	fmt.Fprintln(w, "|:------|---:|-----------:|------:|:------|")
	total := d.TotalMS
	if total <= 0 {
		total = 1
	}
	var sumTop float64
	var walk func(spans []obs.SpanDump, depth int)
	walk = func(spans []obs.SpanDump, depth int) {
		for _, s := range spans {
			if depth == 0 {
				sumTop += s.DurMS
			}
			name := s.Name
			if depth > 0 {
				name = strings.Repeat("&nbsp;&nbsp;", depth) + "↳ " + name
			}
			fmt.Fprintf(w, "| %s | %.2f | %.1f%% | %s | %s |\n",
				name, s.DurMS, 100*s.DurMS/total, fmtBytes(s.AllocBytes), fmtAttrs(s.Attrs))
			walk(s.Spans, depth+1)
		}
	}
	walk(d.Spans, 0)
	fmt.Fprintf(w, "| **total (phases)** | **%.2f** | **%.1f%%** | | |\n", sumTop, 100*sumTop/total)
	m := d.Metrics
	if len(m.Counters)+len(m.Gauges)+len(m.Histograms) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\n## Metrics\n\n")
	fmt.Fprintln(w, "| metric | value |")
	fmt.Fprintln(w, "|:-------|:------|")
	for _, name := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "| %s | %d |\n", name, m.Counters[name])
	}
	for _, name := range sortedKeys(m.Gauges) {
		fmt.Fprintf(w, "| %s | %g |\n", name, m.Gauges[name])
	}
	for _, name := range sortedKeys(m.Histograms) {
		h := m.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(w, "| %s | (no observations) |\n", name)
			continue
		}
		fmt.Fprintf(w, "| %s | count=%d mean=%.4g min=%.4g max=%.4g |\n",
			name, h.Count, h.Mean(), h.Min, h.Max)
	}
	return nil
}

// writeFlightTable renders a /debug/flight dump as markdown: one table
// per view (recent, slowest, failed), then a per-phase breakdown for
// every entry that retained a span tree.
func writeFlightTable(w *os.File, path string) error {
	d, err := obs.ReadFlightFile(path)
	if err != nil {
		return err
	}
	view := func(title string, entries []obs.FlightEntry) {
		fmt.Fprintf(w, "## Flight — %s (%d)\n\n", title, len(entries))
		if len(entries) == 0 {
			fmt.Fprintln(w, "(empty)")
			fmt.Fprintln(w)
			return
		}
		fmt.Fprintln(w, "| job | trace | state | analysis | priority | queued ms | run ms | error |")
		fmt.Fprintln(w, "|:----|:------|:------|:---------|:---------|----------:|-------:|:------|")
		for _, e := range entries {
			state := e.State
			if e.Cached {
				state += " (cached)"
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %.1f | %.1f | %s |\n",
				e.JobID, e.TraceID, state, e.Analysis, e.Priority, e.QueuedMS, e.RunMS, e.Error)
		}
		fmt.Fprintln(w)
	}
	view("recent", d.Recent)
	view("slowest", d.Slowest)
	view("failed", d.Failed)
	seen := map[string]bool{}
	for _, entries := range [][]obs.FlightEntry{d.Slowest, d.Failed, d.Recent} {
		for _, e := range entries {
			if e.Trace == nil || seen[e.TraceID] {
				continue
			}
			seen[e.TraceID] = true
			fmt.Fprintf(w, "### Phases — %s (trace %s)\n\n", e.JobID, e.TraceID)
			fmt.Fprintln(w, "| phase | ms | alloc |")
			fmt.Fprintln(w, "|:------|---:|------:|")
			var walk func(spans []obs.SpanDump, depth int)
			walk = func(spans []obs.SpanDump, depth int) {
				for _, s := range spans {
					name := s.Name
					if depth > 0 {
						name = strings.Repeat("&nbsp;&nbsp;", depth) + "↳ " + name
					}
					alloc := fmtBytes(s.AllocBytes)
					if s.AllocApprox && alloc != "" {
						alloc = "~" + alloc
					}
					fmt.Fprintf(w, "| %s | %.2f | %s |\n", name, s.DurMS, alloc)
					walk(s.Spans, depth+1)
				}
			}
			walk(e.Trace.Spans, 0)
			fmt.Fprintln(w)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtBytes(b uint64) string {
	switch {
	case b == 0:
		return ""
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(attrs))
	for _, k := range sortedKeys(attrs) {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}
