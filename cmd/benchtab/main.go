// Command benchtab regenerates the paper's evaluation artifacts end to
// end: Table 1 (grid-by-grid OPERA vs Monte Carlo accuracy and
// speedup), Figures 1–2 (voltage-drop distributions), the §5.1 special
// case and the ablation studies.
//
// Usage:
//
//	benchtab -exp table1
//	benchtab -exp table1 -full        # paper-scale sizes and 1000 samples
//	benchtab -exp fig1
//	benchtab -exp fig2
//	benchtab -exp special
//	benchtab -exp ordersweep
//	benchtab -exp solver
//	benchtab -exp ordering
//	benchtab -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"opera/internal/experiments"
	"opera/internal/galerkin"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: table1, fig1, fig2, special, ordersweep, solver, mor, ordering, all")
		full = flag.Bool("full", false, "paper-scale configuration (slow)")
		seed = flag.Int64("seed", 2005, "experiment seed")
	)
	flag.Parse()
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", func() error {
		cfg := experiments.DefaultTable1()
		if *full {
			cfg = experiments.FullTable1()
		}
		cfg.Seed = *seed
		_, err := experiments.WriteTable1(os.Stdout, cfg, logf)
		return err
	})
	run("fig1", func() error {
		cfg := experiments.DefaultFigure(0)
		if *full {
			cfg = experiments.FullFigure(0)
		}
		_, err := experiments.WriteFigure(os.Stdout, cfg, "Figure 1")
		return err
	})
	run("fig2", func() error {
		cfg := experiments.DefaultFigure(1)
		if *full {
			cfg = experiments.FullFigure(1)
		}
		_, err := experiments.WriteFigure(os.Stdout, cfg, "Figure 2")
		return err
	})
	run("special", func() error {
		nodes, samples := 2600, 1000
		if *full {
			nodes, samples = 19181, 1000
		}
		_, err := experiments.WriteSpecialCase(os.Stdout, nodes, 2, 3, samples, 0.6, *seed)
		return err
	})
	run("ordersweep", func() error {
		nodes, samples := 1600, 800
		if *full {
			nodes, samples = 19181, 2000
		}
		rows, err := experiments.RunOrderSweep(nodes, 3, samples, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("Expansion-order sweep (%d nodes, %d-sample MC reference)\n\n", nodes, samples)
		return experiments.FormatOrderSweep(rows).Write(os.Stdout)
	})
	run("solver", func() error {
		nodes := 1600
		if *full {
			nodes = 19181
		}
		rows, err := experiments.RunSolverAblation(nodes, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("Solver-path ablation (§5.2), %d nodes\n\n", nodes)
		return experiments.FormatSolverAblation(rows).Write(os.Stdout)
	})
	run("mor", func() error {
		nodes := 2600
		if *full {
			nodes = 19181
		}
		row, err := experiments.RunMORAblation(nodes, 12, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("MOR ablation (§5.2), %d nodes\n\n", nodes)
		return experiments.FormatMORAblation(row).Write(os.Stdout)
	})
	run("ordering", func() error {
		nodes := 1600
		if *full {
			nodes = 19181
		}
		rows, err := experiments.RunOrderingAblation(nodes, *seed, []galerkin.Ordering{
			galerkin.OrderND, galerkin.OrderRCM, galerkin.OrderMD, galerkin.OrderNatural,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Augmented-system ordering ablation (%d nodes)\n\n", nodes)
		return experiments.FormatOrderingAblation(rows).Write(os.Stdout)
	})
}
