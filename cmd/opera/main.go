// Command opera runs the stochastic power-grid analysis of the paper on
// a netlist: it computes the chaos expansion of every node voltage over
// a fixed-step transient window and reports the moments, the worst-drop
// node's statistics, and (optionally) the full distribution at selected
// nodes.
//
// Usage:
//
//	opera -netlist grid.sp -order 2 -step 1e-10 -steps 20
//	opera -nodes 20000 -seed 3 -order 3 -track 125 -csv out.csv
//
// With -netlist absent, a synthetic grid of -nodes nodes is generated.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"opera/internal/core"
	"opera/internal/factor"
	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/report"
	"opera/internal/service"
	"opera/internal/sparse"
)

func main() {
	var (
		netPath  = flag.String("netlist", "", "input netlist (OPERA text format); empty = generate")
		nodes    = flag.Int("nodes", 10000, "node count when generating")
		seed     = flag.Int64("seed", 1, "generator / sampling seed")
		order    = flag.Int("order", 2, "chaos expansion order p")
		step     = flag.Float64("step", 1e-10, "time step (s)")
		steps    = flag.Int("steps", 20, "number of time steps")
		ordering = flag.String("ordering", "nd", "fill-reducing ordering: nd, rcm, md, amd, natural")
		track    = flag.String("track", "", "comma-separated node ids to report distributions for")
		csvPath  = flag.String("csv", "", "write per-node moments at the final step as CSV")
		mcCheck  = flag.Int("mc", 0, "also run Monte Carlo with this many samples and report accuracy")
		leakage  = flag.Bool("leakage", false, "run the §5.1 special case: lognormal per-region leakage only")
		sigmaI   = flag.Float64("sigmai", 0.6, "sigma of ln(I_leak) for -leakage")
		regions  = flag.Int("regions", 4, "intra-die region count for -leakage")
		adaptive = flag.Bool("adaptive", false, "escalate the expansion order until the variance converges")
		trace    = flag.Bool("trace", false, "print the per-phase trace and metrics table after the run")
		traceOut = flag.String("trace-out", "", "write the trace + metrics as JSON to this file")
		pprof    = flag.String("pprof-addr", "", "serve net/http/pprof, expvar and live trace/metrics on this address (e.g. localhost:6060)")
		workers  = flag.Int("workers", 0, "worker pool size for the parallel hot loops; 0 = GOMAXPROCS (results are identical for any value)")
		remote   = flag.String("remote", "", "submit to a running operad at this address instead of solving locally")
		priority = flag.String("priority", "interactive", "remote job priority: interactive or batch")
		timeout  = flag.Duration("timeout", 0, "remote job deadline; 0 = server default")
		traceID  = flag.String("trace-id", "", "remote request trace ID (32 hex chars); empty = server mints one")
		showTr   = flag.Bool("show-trace", false, "after a remote job completes, fetch and print its stitched cross-shard trace waterfall")
		logLevel = flag.String("log-level", "warn", "remote client structured-log level: debug|info|warn|error|off")

		sweepSeeds   = flag.String("sweep-seeds", "", "remote bulk sweep: comma-separated seed axis (e.g. 1,2,3)")
		sweepCorners = flag.String("sweep-corners", "", "remote bulk sweep: corner axis, name or name:kg:kcl:kil per entry (e.g. tt,ss:0.1:0.05:0.05)")
		sweepLoads   = flag.String("sweep-loads", "", "remote bulk sweep: load axis, name or name:peakdropfrac per entry (e.g. nom,hot:0.15)")
		sweepOut     = flag.String("sweep-out", "", "append sweep result lines (JSON lines) to this file; an interrupted sweep resumes from it")
	)
	flag.Parse()

	sweeping := *sweepSeeds != "" || *sweepCorners != "" || *sweepLoads != ""
	if sweeping && *remote == "" {
		fatal("opera: sweep flags need -remote (an operag router, or comma-separated shard addresses)")
	}
	if *remote != "" {
		req := buildRemoteRequest(*netPath, *nodes, *seed, *order,
			*step, *steps, *ordering, *track, *leakage, *sigmaI, *regions,
			*workers, *priority, *timeout, *mcCheck)
		req.TraceID = *traceID
		if sweeping {
			runSweep(*remote, service.SweepRequest{
				Base:    req,
				Corners: parseSweepCorners(*sweepCorners),
				Loads:   parseSweepLoads(*sweepLoads),
				Seeds:   parseSweepSeeds(*sweepSeeds),
			}, *sweepOut, *logLevel)
			return
		}
		runRemote(*remote, req, *logLevel, *showTr)
		return
	}

	tr := newTracer(*trace, *traceOut, *pprof)
	defer exportTrace(tr, *trace, *traceOut)

	spA := tr.Start("assemble")
	nl := loadOrGenerate(*netPath, *nodes, *seed)
	if *leakage {
		spA.End()
		runLeakage(nl, core.LeakageOptions{
			Regions: *regions, SigmaLogI: *sigmaI, Order: *order,
			Step: *step, Steps: *steps, Workers: *workers, Obs: tr,
		})
		return
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		fatal("opera: %v", err)
	}
	spA.SetAttrs(obs.Int("n", sys.N))
	spA.End()
	opts := core.Options{
		Order: *order, Step: *step, Steps: *steps,
		Ordering: parseOrdering(*ordering), Workers: *workers, Obs: tr,
	}
	trackNodes := parseTrack(*track)
	opts.TrackNodes = trackNodes
	// The basis dimension comes from the stamped system's random
	// variables (mna.Dims: the paper's W/T/Leff reduced to ξG, ξL by
	// Eq. 14), not a hardcoded constant, so the printed size matches
	// what is actually solved.
	fmt.Printf("opera: %s, order %d (basis %d), %d steps of %.3g s\n",
		nl.Stats(), *order, basisSize(mna.Dims, *order), *steps, *step)
	var res *core.Result
	if *adaptive {
		ares, err := core.AnalyzeAdaptive(sys, core.AdaptiveOptions{Base: opts})
		if err != nil {
			fatal("opera: %v", err)
		}
		for _, st := range ares.OrdersTried {
			fmt.Printf("  order %d: max sigma %.4g V (rel change %.3g)\n", st.Order, st.MaxStd, st.RelChange)
		}
		if !ares.Converged {
			fmt.Println("  warning: variance did not converge within MaxOrder")
		}
		res = ares.Result
	} else {
		var err error
		res, err = core.Analyze(sys, opts)
		if err != nil {
			fatal("opera: %v", err)
		}
	}
	fmt.Printf("opera: solved %d-unknown augmented system (%s, nnz(L)=%d) in %.3fs%s\n",
		res.Galerkin.AugmentedN, res.Galerkin.Factorer, res.Galerkin.FactorNNZ,
		res.Elapsed.Seconds(), decoupledNote(res))
	printGuard(res.Galerkin.Guard())
	node, stepIdx := res.MaxMeanDropNode()
	sd := math.Sqrt(res.Variance[stepIdx][node])
	drop := res.VDD - res.Mean[stepIdx][node]
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, σ %.4g V, ±3σ = ±%.0f%% of the drop\n",
		node, stepIdx, 100*drop/res.VDD, sd, 300*sd/drop)
	for _, tn := range trackNodes {
		e := res.Tracked[tn][stepIdx]
		fmt.Printf("node %d @ step %d: mean %.6g V, σ %.4g V, skew %.3f, excess kurtosis %.3f\n",
			tn, stepIdx, e.Mean(), e.Std(), e.Skewness(), e.ExcessKurtosis())
		fmt.Printf("  variance attribution: geometry ξG %.1f%%, channel ξL %.1f%%, interactions %.1f%%\n",
			100*e.SobolTotal(0), 100*e.SobolTotal(1), 100*e.SobolInteraction())
	}
	if *csvPath != "" {
		writeCSV(*csvPath, res)
	}
	if *mcCheck > 0 {
		runMCCheck(sys, opts, *mcCheck, *seed, res)
	}
}

// newTracer builds the run tracer when any observability flag is set
// (nil otherwise: the pipeline's nil fast path), installs the
// package-level metric hooks, and starts the debug server.
func newTracer(trace bool, traceOut, pprofAddr string) *obs.Tracer {
	if !trace && traceOut == "" && pprofAddr == "" {
		return nil
	}
	tr := obs.New("opera.run")
	reg := tr.Registry()
	sparse.SetMetrics(reg)
	order.SetMetrics(reg)
	factor.SetMetrics(reg)
	if pprofAddr != "" {
		if _, err := obs.ServeDebug(pprofAddr, tr); err != nil {
			fatal("opera: pprof server: %v", err)
		}
		fmt.Printf("opera: debug server on http://%s/debug/pprof/ (also /debug/vars, /metrics, /trace)\n", pprofAddr)
	}
	return tr
}

// exportTrace finishes the trace and emits the requested exports.
func exportTrace(tr *obs.Tracer, trace bool, traceOut string) {
	if tr == nil {
		return
	}
	tr.Finish()
	if trace {
		if err := tr.WriteText(os.Stdout); err != nil {
			fatal("opera: writing trace: %v", err)
		}
	}
	if traceOut != "" {
		if err := tr.WriteJSONFile(traceOut); err != nil {
			fatal("opera: writing %s: %v", traceOut, err)
		}
		fmt.Printf("opera: wrote trace to %s\n", traceOut)
	}
}

func loadOrGenerate(path string, nodes int, seed int64) *netlist.Netlist {
	if path == "" {
		nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
		if err != nil {
			fatal("opera: generating grid: %v", err)
		}
		return nl
	}
	f, err := os.Open(path)
	if err != nil {
		fatal("opera: %v", err)
	}
	defer f.Close()
	nl, err := netlist.Read(f)
	if err != nil {
		fatal("opera: %v", err)
	}
	return nl
}

func parseOrdering(s string) galerkin.Ordering {
	switch s {
	case "nd":
		return galerkin.OrderND
	case "rcm":
		return galerkin.OrderRCM
	case "md":
		return galerkin.OrderMD
	case "amd":
		return galerkin.OrderAMD
	case "natural":
		return galerkin.OrderNatural
	default:
		fatal("opera: unknown ordering %q", s)
		return 0
	}
}

func parseTrack(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("opera: bad -track entry %q", part)
		}
		out = append(out, v)
	}
	return out
}

func basisSize(dim, order int) int {
	n := 1
	for k := 1; k <= order; k++ {
		n = n * (dim + k) / k
	}
	return n
}

// printGuard reports the numerical-robustness telemetry: residual
// verification stats always, plus every escalation-ladder transition
// and step retry when the solve was not entirely healthy.
func printGuard(rep *numguard.Report) {
	if rep == nil {
		return
	}
	fmt.Printf("numguard: %s\n", rep.Summary())
	for _, tr := range rep.Transitions {
		fmt.Printf("numguard:   transition %s\n", tr)
	}
	if rep.StepRetries > 0 {
		fmt.Printf("numguard:   %d step(s) retried on a higher rung\n", rep.StepRetries)
	}
}

func decoupledNote(res *core.Result) string {
	if res.Galerkin.Decoupled {
		return " [decoupled Eq. 27 path]"
	}
	return ""
}

func writeCSV(path string, res *core.Result) {
	f, err := os.Create(path)
	if err != nil {
		fatal("opera: %v", err)
	}
	defer f.Close()
	t := report.NewTable("node", "mean_v", "std_v", "drop_pct_vdd")
	s := res.Steps
	for i := 0; i < res.N; i++ {
		t.AddRow(i,
			fmt.Sprintf("%.8g", res.Mean[s][i]),
			fmt.Sprintf("%.6g", math.Sqrt(res.Variance[s][i])),
			fmt.Sprintf("%.4f", res.DropPercent(res.Mean[s][i])))
	}
	if err := t.CSV(f); err != nil {
		fatal("opera: %v", err)
	}
	fmt.Printf("opera: wrote %s\n", path)
}

func runMCCheck(sys *mna.System, opts core.Options, samples int, seed int64, res *core.Result) {
	fmt.Printf("opera: running %d-sample Monte Carlo check...\n", samples)
	mc, mcTime, err := core.RunMC(sys, opts, samples, seed+1000, nil)
	if err != nil {
		fatal("opera: MC: %v", err)
	}
	nominal, err := core.NominalRun(sys, opts)
	if err != nil {
		fatal("opera: nominal: %v", err)
	}
	acc, err := core.CompareWithMC(res, mc, nominal)
	if err != nil {
		fatal("opera: %v", err)
	}
	fmt.Printf("accuracy vs MC: µ err avg %.4f%% max %.4f%%; σ err avg %.2f%% max %.2f%%\n",
		acc.AvgErrMeanPct, acc.MaxErrMeanPct, acc.AvgErrStdPct, acc.MaxErrStdPct)
	fmt.Printf("±3σ = ±%.0f%% of nominal drop; µ−µ0 shift %.4f%% VDD\n",
		acc.ThreeSigmaPctOfNominal, acc.MeanShiftPctVDD)
	fmt.Printf("CPU: MC %.2fs, OPERA %.2fs, speedup %.0fx\n",
		mcTime.Seconds(), res.Elapsed.Seconds(), float64(mcTime)/float64(res.Elapsed))
}

func runLeakage(nl *netlist.Netlist, opts core.LeakageOptions) {
	res, err := core.AnalyzeLeakage(nl, opts)
	if err != nil {
		fatal("opera: leakage analysis: %v", err)
	}
	fmt.Printf("opera: §5.1 special case, %d regions, sigma(ln I) = %.2g\n", opts.Regions, opts.SigmaLogI)
	fmt.Printf("opera: decoupled=%v, %d-unknown factorization, %.3fs\n",
		res.Galerkin.Decoupled, res.Galerkin.AugmentedN, res.Elapsed.Seconds())
	printGuard(res.Galerkin.Guard())
	node, step := res.MaxMeanDropNode()
	sd := math.Sqrt(res.Variance[step][node])
	drop := res.VDD - res.Mean[step][node]
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, sigma %.4g V, ±3σ = ±%.0f%% of the drop\n",
		node, step, 100*drop/res.VDD, sd, 300*sd/drop)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
