package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"opera/internal/cluster"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/obs/logx"
	"opera/internal/service"
)

// runRemote submits the analysis described by the local flags to a
// running operad and prints the same summary the local path would. The
// request encoding is the service package's own Client, so the CLI and
// the daemon can never drift apart on the wire format. The client's
// structured log (queue-full retries) goes to stderr; the result
// summary stays on stdout.
func runRemote(addr string, req service.Request, logLevel string, showTrace bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := remoteClient(addr, logLevel)
	sub, err := c.Submit(ctx, req)
	if err != nil {
		fatal("opera: remote submit: %v", err)
	}
	how := "queued"
	switch {
	case sub.Cached:
		how = "served from cache"
	case sub.Coalesced:
		how = "coalesced onto in-flight job"
	}
	fmt.Printf("opera: remote job %s on %s (%s)\n", sub.ID, addr, how)
	if sub.TraceID != "" {
		fmt.Printf("opera: trace %s\n", sub.TraceID)
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		fatal("opera: remote wait: %v", err)
	}
	if st.State != service.StateDone {
		if st.Diagnosis != nil {
			fmt.Fprintf(os.Stderr, "opera: diagnosis: %v\n", st.Diagnosis)
		}
		fatal("opera: remote job %s: %s", st.State, st.Error)
	}
	res, err := c.Result(ctx, sub.ID)
	if err != nil {
		fatal("opera: remote result: %v", err)
	}
	printRemote(res, st)
	if showTrace && st.TraceID != "" {
		printStitchedTrace(addr, st.TraceID)
	}
}

// printStitchedTrace fetches and prints the job's cross-shard trace
// waterfall. Against an operag router the /debug/trace endpoint does
// the stitching; against a bare operad shard (which serves only its own
// /debug/spans fragment) the stitching runs here. Best-effort either
// way: the job result already printed, so a missing trace is a note,
// not a failure.
func printStitchedTrace(addr, traceID string) {
	base := baseURL(addr)
	resp, err := http.Get(base + "/debug/trace/" + traceID + "?format=text")
	if err == nil && resp.StatusCode == http.StatusOK {
		io.Copy(os.Stdout, resp.Body)
		resp.Body.Close()
		return
	}
	if resp != nil {
		resp.Body.Close()
	}
	resp, err = http.Get(base + "/debug/spans/" + traceID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opera: trace %s: %v\n", traceID, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "opera: trace %s: no spans retained (is the span ring enabled?)\n", traceID)
		return
	}
	var frag obs.TraceFragment
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&frag); err != nil {
		fmt.Fprintf(os.Stderr, "opera: trace %s: %v\n", traceID, err)
		return
	}
	cluster.WriteWaterfall(os.Stdout, cluster.Stitch(traceID, frag.Spans))
}

// baseURL picks the first address of a (possibly comma-separated)
// -remote value and normalizes it to a base URL.
func baseURL(addr string) string {
	addr = strings.TrimSpace(strings.Split(addr, ",")[0])
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// remoteClient builds the service client for -remote. A comma-separated
// address list makes it ring-aware: sticky to one member, rotating past
// draining or unreachable ones (point it at the operad shards directly,
// or at one or more operag routers).
func remoteClient(addr, logLevel string) *service.Client {
	var c *service.Client
	if strings.Contains(addr, ",") {
		c = service.NewRingClient(strings.Split(addr, ","))
	} else {
		c = service.NewClient(addr)
	}
	if logLevel != "off" {
		level, err := logx.ParseLevel(logLevel)
		if err != nil {
			fatal("opera: %v", err)
		}
		c.Logger = logx.New(os.Stderr, level)
	}
	return c
}

// runSweep streams a corner × load × seed matrix through a cluster
// router's bulk API. Lines land in outPath as they arrive (JSON lines,
// the stream's own wire format), so an interrupted sweep resumes: on
// restart the completed indices already in the file are sent as Done
// and only the missing cells are solved.
func runSweep(addr string, sw service.SweepRequest, outPath, logLevel string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := remoteClient(addr, logLevel)

	// Expansion is deterministic and runs client-side too, so the
	// sweep ID — the resume handle — is known before any bytes move.
	jobs, err := sw.Expand()
	if err != nil {
		fatal("opera: sweep: %v", err)
	}
	sweepID := sw.ID(jobs)
	var out *os.File
	if outPath != "" {
		sw.Done = doneIndices(outPath, sweepID)
		if len(sw.Done) > 0 {
			fmt.Printf("opera: sweep %s resuming: %d of %d cells already in %s\n",
				sweepID, len(sw.Done), len(jobs), outPath)
		}
		out, err = os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("opera: %v", err)
		}
		defer out.Close()
	}
	fmt.Printf("opera: sweep %s: %d cells (%d corners × %d loads × %d seeds) via %s\n",
		sweepID, len(jobs), max(1, len(sw.Corners)), max(1, len(sw.Loads)), max(1, len(sw.Seeds)), addr)

	enc := json.NewEncoder(io.Discard)
	if out != nil {
		enc = json.NewEncoder(out)
	}
	streamed, failed := 0, 0
	sweepStart := time.Now()
	err = c.Sweep(ctx, sw, func(line service.SweepLine) error {
		if line.EOF {
			fmt.Printf("opera: sweep %s complete: %d done, %d failed of %d cells\n",
				line.SweepID, line.DoneCells, line.Failed, line.Total)
			return nil
		}
		if out != nil {
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		streamed++
		status := "done"
		switch {
		case line.Error != "":
			failed++
			status = "FAILED: " + line.Error
		case line.Degraded:
			status = "done (degraded)"
		case line.Cached:
			status = "done (cached)"
		}
		fmt.Printf("opera: [%d/%d] corner=%s load=%s seed=%d shard=%s trace=%s %s\n",
			streamed, line.Total-len(sw.Done), line.Corner, line.Load, line.Seed,
			line.Shard, line.TraceID, status)
		// Live progress with an ETA from the running mean stream rate
		// (cells run concurrently on the router, so wall-per-landed-cell
		// already reflects the effective parallelism). Stderr, so piped
		// stdout stays clean.
		if pending := line.Total - len(sw.Done); streamed < pending {
			perCell := time.Since(sweepStart) / time.Duration(streamed)
			eta := perCell * time.Duration(pending-streamed)
			fmt.Fprintf(os.Stderr, "opera: sweep progress %d/%d (%d failed), %.0f ms/cell, ETA %s\n",
				streamed, pending, failed,
				float64(perCell)/float64(time.Millisecond), eta.Round(100*time.Millisecond))
		}
		return nil
	})
	if err != nil {
		fatal("opera: sweep: %v (rerun with the same flags and -sweep-out to resume)", err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// doneIndices scans an interrupted sweep's output file for cells this
// sweep already holds (matching sweep ID, no error).
func doneIndices(path, sweepID string) []int {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var done []int
	seen := map[int]bool{}
	dec := json.NewDecoder(f)
	for {
		var line service.SweepLine
		if err := dec.Decode(&line); err != nil {
			break
		}
		if line.SweepID == sweepID && !line.EOF && line.Error == "" && !seen[line.Index] {
			seen[line.Index] = true
			done = append(done, line.Index)
		}
	}
	return done
}

// parseSweepCorners parses -sweep-corners: comma-separated entries of
// "name" (base variation model) or "name:kg:kcl:kil".
func parseSweepCorners(s string) []service.SweepCorner {
	if s == "" {
		return nil
	}
	var out []service.SweepCorner
	for _, ent := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(ent), ":")
		c := service.SweepCorner{Name: parts[0]}
		if len(parts) == 4 {
			c.Variation = &mna.VariationSpec{
				KG:  parseFloat(parts[1], "sweep-corners"),
				KCL: parseFloat(parts[2], "sweep-corners"),
				KIL: parseFloat(parts[3], "sweep-corners"),
			}
		} else if len(parts) != 1 {
			fatal("opera: -sweep-corners entry %q: want name or name:kg:kcl:kil", ent)
		}
		out = append(out, c)
	}
	return out
}

// parseSweepLoads parses -sweep-loads: comma-separated entries of
// "name" (base circuit) or "name:peakdropfrac".
func parseSweepLoads(s string) []service.SweepLoad {
	if s == "" {
		return nil
	}
	var out []service.SweepLoad
	for _, ent := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(ent), ":")
		l := service.SweepLoad{Name: parts[0]}
		switch len(parts) {
		case 1:
		case 2:
			l.PeakDropFrac = parseFloat(parts[1], "sweep-loads")
		default:
			fatal("opera: -sweep-loads entry %q: want name or name:peakdropfrac", ent)
		}
		out = append(out, l)
	}
	return out
}

// parseSweepSeeds parses -sweep-seeds: comma-separated integers.
func parseSweepSeeds(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, ent := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(ent), 10, 64)
		if err != nil {
			fatal("opera: -sweep-seeds entry %q: %v", ent, err)
		}
		out = append(out, v)
	}
	return out
}

func parseFloat(s, flagName string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		fatal("opera: -%s value %q: %v", flagName, s, err)
	}
	return v
}

func printRemote(res *service.JobResult, st service.JobStatus) {
	fmt.Printf("opera: %s analysis, %d nodes, %d steps", res.Kind, res.N, res.Steps)
	if res.Basis > 0 {
		fmt.Printf(", basis %d", res.Basis)
	}
	fmt.Println()
	if res.Factorer != "" {
		note := ""
		if res.Decoupled {
			note = " [decoupled Eq. 27 path]"
		}
		fmt.Printf("opera: solved %d-unknown augmented system (%s, nnz(L)=%d) in %.3fs%s\n",
			res.AugmentedN, res.Factorer, res.FactorNNZ, res.ElapsedMS/1000, note)
	}
	if res.SamplesRun > 0 {
		fmt.Printf("opera: %d Monte Carlo samples in %.3fs\n", res.SamplesRun, res.ElapsedMS/1000)
	}
	if res.Degraded {
		se := 0.0
		if res.StdErr != nil {
			se = res.StdErr[res.WorstStep][res.WorstNode]
		}
		fmt.Printf("opera: DEGRADED result: %d of %d samples (deadline or drain); worst-node std error %.3g V\n",
			res.SamplesRun, res.SamplesRequested, se)
	}
	if g := res.Guard; g != nil {
		fmt.Printf("numguard: %s\n", g.Summary)
		for _, tr := range g.Transitions {
			fmt.Printf("numguard:   transition %s\n", tr)
		}
	}
	drop := res.VDD - res.Mean[res.WorstStep][res.WorstNode]
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, σ %.4g V",
		res.WorstNode, res.WorstStep, res.WorstDropPct, res.WorstStd)
	if drop > 0 {
		fmt.Printf(", ±3σ = ±%.0f%% of the drop", 300*res.WorstStd/drop)
	}
	fmt.Println()
	fmt.Printf("opera: queued %.0f ms, ran %.0f ms on the server\n", st.QueuedMS, st.RunMS)
}

// buildRemoteRequest maps the CLI flags onto the wire request. A
// -netlist file is inlined; otherwise the generator spec itself is
// shipped (tiny, and the server builds the identical grid — same
// generator, same seed). -mc N remotely means a Monte Carlo job
// proper (there is no local result to compare against), which is the
// analysis that can checkpoint, resume, and return degraded partials.
func buildRemoteRequest(netPath string, nodes int, seed int64, order int,
	step float64, steps int, ordering, track string,
	leakage bool, sigmaI float64, regions int, workers int,
	priority string, timeout time.Duration, mcSamples int) service.Request {
	req := service.Request{
		Order: order, Step: step, Steps: steps, Ordering: ordering,
		TrackNodes: parseTrack(track),
		Workers:    workers,
		Priority:   priority,
		TimeoutMS:  int64(timeout / time.Millisecond),
	}
	switch {
	case leakage:
		req.Analysis = service.KindLeakage
		req.Regions = regions
		req.SigmaLogI = sigmaI
	case mcSamples > 0:
		req.Analysis = service.KindMC
		req.Samples = mcSamples
		req.Seed = seed
	}
	if netPath != "" {
		data, err := os.ReadFile(netPath)
		if err != nil {
			fatal("opera: %v", err)
		}
		req.Netlist = string(data)
	} else {
		spec := grid.DefaultSpec(nodes, seed)
		if leakage && regions > 1 {
			spec.Regions = regions
		}
		req.Grid = &spec
	}
	return req
}
