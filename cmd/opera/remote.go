package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"opera/internal/grid"
	"opera/internal/obs/logx"
	"opera/internal/service"
)

// runRemote submits the analysis described by the local flags to a
// running operad and prints the same summary the local path would. The
// request encoding is the service package's own Client, so the CLI and
// the daemon can never drift apart on the wire format. The client's
// structured log (queue-full retries) goes to stderr; the result
// summary stays on stdout.
func runRemote(addr string, req service.Request, logLevel string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := service.NewClient(addr)
	if logLevel != "off" {
		level, err := logx.ParseLevel(logLevel)
		if err != nil {
			fatal("opera: %v", err)
		}
		c.Logger = logx.New(os.Stderr, level)
	}
	sub, err := c.Submit(ctx, req)
	if err != nil {
		fatal("opera: remote submit: %v", err)
	}
	how := "queued"
	switch {
	case sub.Cached:
		how = "served from cache"
	case sub.Coalesced:
		how = "coalesced onto in-flight job"
	}
	fmt.Printf("opera: remote job %s on %s (%s)\n", sub.ID, addr, how)
	if sub.TraceID != "" {
		fmt.Printf("opera: trace %s\n", sub.TraceID)
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		fatal("opera: remote wait: %v", err)
	}
	if st.State != service.StateDone {
		if st.Diagnosis != nil {
			fmt.Fprintf(os.Stderr, "opera: diagnosis: %v\n", st.Diagnosis)
		}
		fatal("opera: remote job %s: %s", st.State, st.Error)
	}
	res, err := c.Result(ctx, sub.ID)
	if err != nil {
		fatal("opera: remote result: %v", err)
	}
	printRemote(res, st)
}

func printRemote(res *service.JobResult, st service.JobStatus) {
	fmt.Printf("opera: %s analysis, %d nodes, %d steps", res.Kind, res.N, res.Steps)
	if res.Basis > 0 {
		fmt.Printf(", basis %d", res.Basis)
	}
	fmt.Println()
	if res.Factorer != "" {
		note := ""
		if res.Decoupled {
			note = " [decoupled Eq. 27 path]"
		}
		fmt.Printf("opera: solved %d-unknown augmented system (%s, nnz(L)=%d) in %.3fs%s\n",
			res.AugmentedN, res.Factorer, res.FactorNNZ, res.ElapsedMS/1000, note)
	}
	if res.SamplesRun > 0 {
		fmt.Printf("opera: %d Monte Carlo samples in %.3fs\n", res.SamplesRun, res.ElapsedMS/1000)
	}
	if res.Degraded {
		se := 0.0
		if res.StdErr != nil {
			se = res.StdErr[res.WorstStep][res.WorstNode]
		}
		fmt.Printf("opera: DEGRADED result: %d of %d samples (deadline or drain); worst-node std error %.3g V\n",
			res.SamplesRun, res.SamplesRequested, se)
	}
	if g := res.Guard; g != nil {
		fmt.Printf("numguard: %s\n", g.Summary)
		for _, tr := range g.Transitions {
			fmt.Printf("numguard:   transition %s\n", tr)
		}
	}
	drop := res.VDD - res.Mean[res.WorstStep][res.WorstNode]
	fmt.Printf("worst node %d at step %d: mean drop %.2f%% VDD, σ %.4g V",
		res.WorstNode, res.WorstStep, res.WorstDropPct, res.WorstStd)
	if drop > 0 {
		fmt.Printf(", ±3σ = ±%.0f%% of the drop", 300*res.WorstStd/drop)
	}
	fmt.Println()
	fmt.Printf("opera: queued %.0f ms, ran %.0f ms on the server\n", st.QueuedMS, st.RunMS)
}

// buildRemoteRequest maps the CLI flags onto the wire request. A
// -netlist file is inlined; otherwise the generator spec itself is
// shipped (tiny, and the server builds the identical grid — same
// generator, same seed). -mc N remotely means a Monte Carlo job
// proper (there is no local result to compare against), which is the
// analysis that can checkpoint, resume, and return degraded partials.
func buildRemoteRequest(netPath string, nodes int, seed int64, order int,
	step float64, steps int, ordering, track string,
	leakage bool, sigmaI float64, regions int, workers int,
	priority string, timeout time.Duration, mcSamples int) service.Request {
	req := service.Request{
		Order: order, Step: step, Steps: steps, Ordering: ordering,
		TrackNodes: parseTrack(track),
		Workers:    workers,
		Priority:   priority,
		TimeoutMS:  int64(timeout / time.Millisecond),
	}
	switch {
	case leakage:
		req.Analysis = service.KindLeakage
		req.Regions = regions
		req.SigmaLogI = sigmaI
	case mcSamples > 0:
		req.Analysis = service.KindMC
		req.Samples = mcSamples
		req.Seed = seed
	}
	if netPath != "" {
		data, err := os.ReadFile(netPath)
		if err != nil {
			fatal("opera: %v", err)
		}
		req.Netlist = string(data)
	} else {
		spec := grid.DefaultSpec(nodes, seed)
		if leakage && regions > 1 {
			spec.Regions = regions
		}
		req.Grid = &spec
	}
	return req
}
