module opera

go 1.22
